package pipeline

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValidate(t *testing.T) {
	if err := PaperSSSP.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Coefficients{K1: 0, K2: 1, K3: 1, A: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero k1 accepted")
	}
}

func TestEstimateDegenerate(t *testing.T) {
	if PaperPR.Estimate(0, 10) != 0 || PaperPR.Estimate(100, 0) != 0 {
		t.Fatal("degenerate inputs not zero")
	}
}

// With one block the pipeline is just the three stages in sequence.
func TestEstimateSingleBlock(t *testing.T) {
	c := Coefficients{K1: 1e-3, K2: 2e-3, K3: 3e-3, A: 0.5}
	got := c.Estimate(100, 1)
	want := time.Duration((1e-3*100 + 0.5 + 2e-3*100 + 3e-3*100) * float64(time.Second))
	if diff := (got - want).Abs(); diff > time.Microsecond {
		t.Fatalf("single-block estimate %v, want %v", got, want)
	}
}

// Equation 2 must agree with a direct wavefront simulation of the same
// uniform blocks (the closed form is exact for equal-sized blocks).
func TestEstimateMatchesWavefront(t *testing.T) {
	c := Coefficients{K1: 0.4e-3, K2: 1.1e-3, K3: 0.7e-3, A: 2e-3}
	for _, s := range []int{1, 2, 3, 7, 50} {
		d := 10_000.0
		b := d / float64(s)
		tn := time.Duration(c.K1 * b * float64(time.Second))
		tc := time.Duration((c.A + c.K2*b) * float64(time.Second))
		tu := time.Duration(c.K3 * b * float64(time.Second))
		// Direct wavefront recurrence.
		finish := [3]time.Duration{}
		for k := 0; k < s; k++ {
			var prev time.Duration
			for st, cost := range [3]time.Duration{tn, tc, tu} {
				start := prev
				if finish[st] > start {
					start = finish[st]
				}
				finish[st] = start + cost
				prev = finish[st]
			}
		}
		got := c.Estimate(d, s)
		diff := got - finish[2]
		if diff < 0 {
			diff = -diff
		}
		if diff > time.Microsecond {
			t.Fatalf("s=%d: Estimate=%v wavefront=%v", s, got, finish[2])
		}
	}
}

// The U-shape of §III-A3: very small and very large block counts are both
// worse than the optimum.
func TestEstimateUShape(t *testing.T) {
	const d = 100_000
	for _, c := range []Coefficients{PaperSSSP, PaperPR, PaperLP} {
		sOpt := c.OptimalBlocks(d)
		atOpt := c.Estimate(d, sOpt)
		if one := c.Estimate(d, 1); one < atOpt {
			t.Fatalf("s=1 (%v) beats s_opt=%d (%v)", one, sOpt, atOpt)
		}
		if huge := c.Estimate(d, d); huge < atOpt {
			t.Fatalf("s=d (%v) beats s_opt=%d (%v)", huge, sOpt, atOpt)
		}
	}
}

// Lemma 1: the closed-form optimum is never beaten by any sampled integer
// block count (within the rounding slack of forcing integral s).
func TestLemma1OptimalityQuick(t *testing.T) {
	f := func(rk1, rk2, rk3, ra uint16, rd uint32) bool {
		c := Coefficients{
			K1: float64(rk1%997+1) * 1e-6,
			K2: float64(rk2%997+1) * 1e-6,
			K3: float64(rk3%997+1) * 1e-6,
			A:  float64(ra%9973+1) * 1e-5,
		}
		d := float64(rd%1_000_000 + 1000)
		bOpt := c.OptimalBlockSize(d)
		if bOpt < 1 || bOpt > d {
			return false
		}
		best := c.Estimate(d, c.OptimalBlocks(d))
		// Sample block counts around and away from the optimum.
		for _, s := range []int{1, 2, 4, 8, 16, 64, 256, 1024, 4096} {
			if float64(s) > d {
				break
			}
			if got := c.Estimate(d, s); float64(got) < float64(best)*0.999 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// MinTotal must agree with Estimate at the chosen optimum to within the
// integrality slack.
func TestMinTotalConsistent(t *testing.T) {
	for _, c := range []Coefficients{PaperSSSP, PaperPR, PaperLP} {
		const d = 500_000
		closed := c.MinTotal(d).Seconds()
		atInt := c.Estimate(d, c.OptimalBlocks(d)).Seconds()
		if atInt < closed*0.98 {
			t.Fatalf("integer estimate %.4fs beats closed form %.4fs by >2%%", atInt, closed)
		}
		if atInt > closed*1.25 {
			t.Fatalf("integer estimate %.4fs is >25%% above closed form %.4fs", atInt, closed)
		}
	}
}

// The paper's Fig 15 coefficients put s_opt in the tens for SSSP (large a)
// and higher for LP (tiny a): sanity-check the ordering.
func TestPaperCoefficientOrdering(t *testing.T) {
	const d = 1_000_000
	sSSSP := PaperSSSP.OptimalBlocks(d)
	sLP := PaperLP.OptimalBlocks(d)
	if sSSSP >= sLP {
		t.Fatalf("s_opt(SSSP)=%d not below s_opt(LP)=%d; a=84671µs should force big blocks", sSSSP, sLP)
	}
	if sSSSP < 1 || sSSSP > 100 {
		t.Fatalf("s_opt(SSSP)=%d implausible for the paper's coefficients", sSSSP)
	}
}

// The sequential (5-step, WithoutPipeline) estimate must exceed the
// pipelined estimate at the same block count — the Fig 10 ordering.
func TestSequentialSlowerThanPipelined(t *testing.T) {
	const d = 200_000
	for _, c := range []Coefficients{PaperSSSP, PaperPR, PaperLP} {
		s := c.OptimalBlocks(d)
		pip := c.Estimate(d, s)
		seq := c.SequentialEstimate(d, s, 0.01e-6)
		if seq <= pip {
			t.Fatalf("sequential %v not slower than pipelined %v", seq, pip)
		}
	}
}

func TestOptimalBlockSizeClamps(t *testing.T) {
	c := PaperPR
	if b := c.OptimalBlockSize(0); b != 1 {
		t.Fatalf("d=0: b=%v, want 1", b)
	}
	if b := c.OptimalBlockSize(5); b > 5 {
		t.Fatalf("b=%v exceeds d=5", b)
	}
	if s := c.OptimalBlocks(0); s != 1 {
		t.Fatalf("d=0: s=%v, want 1", s)
	}
}

// OptimalBlockSize must hit the case-1 branch when k1 dominates: with a
// huge download coefficient the bound a/(k1-k2) binds before Q.
func TestLemma1Case1Branch(t *testing.T) {
	c := Coefficients{K1: 1e-3, K2: 0.9e-3, K3: 1e-6, A: 1e-2}
	d := 1e9
	b := c.OptimalBlockSize(d)
	want := c.A / (c.K1 - c.K2)
	if math.Abs(b-want)/want > 1e-9 {
		q := math.Sqrt(c.A * d / (c.K1 + c.K3))
		t.Fatalf("b=%v, want case-1 bound %v (Q=%v)", b, want, q)
	}
}
