package gxplug

import (
	"encoding/binary"
	"time"

	"gxplug/internal/shm"
)

// The daemon-agent control protocol flows over System V message queues,
// one request queue and one response queue per daemon. Bulk data never
// rides the queues — it lives in the three rotating shared-memory
// segments (the n/c/u chunks of pipeline shuffle, §III-A2b); queue
// messages carry only flags and small headers, exactly as in Algorithms 1
// and 2 of the paper.

// Message types (the Msg.Type field). Names follow the paper's flags.
const (
	// msgExchangeFinished — agent → daemon: the agent has finished filling
	// the n-segment and draining the u-segment; rotate n→c→u→n.
	msgExchangeFinished int64 = iota + 1
	// msgRotateFinished — daemon → agent: rotation done.
	msgRotateFinished
	// msgCompute — agent → daemon: process the current c-segment.
	msgCompute
	// msgComputeFinished — daemon → agent: c-segment processed; payload
	// carries the device cost.
	msgComputeFinished
	// msgComputeAllFinished — daemon → agent: c-segment was empty; the
	// iteration's stream is drained.
	msgComputeAllFinished
	// msgApply — agent → daemon: run MSGApply over the apply segment.
	msgApply
	// msgMerge — agent → daemon: run MSGMerge over the merge segment.
	msgMerge
	// msgDone — daemon → agent: apply/merge finished; payload carries cost.
	msgDone
	// msgShutdown — agent → daemon: terminate.
	msgShutdown
	// msgError — daemon → agent: operation failed; payload is the error text.
	msgError
)

// queueMsgOverhead is the virtual cost of one control message through a
// System V queue (syscall + copy of a tiny payload). Each block costs the
// pipeline a handful of these; they are part of T_call.
const queueMsgOverhead = 1 * time.Microsecond

// segment roles within a daemon's three-chunk rotation.
const (
	roleN = 0 // being filled with new data by Thread.Download
	roleC = 1 // being computed by the daemon
	roleU = 2 // holding results for Thread.Upload
)

// encodeCost packs a duration for a response payload.
func encodeCost(d time.Duration) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(d))
	return b[:]
}

// decodeCost unpacks a response payload.
func decodeCost(p []byte) time.Duration {
	if len(p) < 8 {
		return 0
	}
	return time.Duration(binary.LittleEndian.Uint64(p))
}

// keys derive the IPC keys of daemon d on a node. Agents and daemons must
// agree on these, like well-known System V keys in the real middleware.
func daemonReqKey(d int) shm.Key  { return shm.Key(1000 + 10*d) }
func daemonRespKey(d int) shm.Key { return shm.Key(1001 + 10*d) }
func daemonSegKey(d, role int) shm.Key {
	return shm.Key(1002 + 10*d + role)
}
