// Package synccache implements the inter-iteration synchronization
// caching of §III-B2: an agent-local vertex cache that avoids
// re-downloading unchanged vertices from the upper system every
// iteration, plus the dirty-tracking that drives lazy uploading through
// the global query/data queues.
//
// The paper describes the cache as "organized in a least recently used
// manner"; its prose about weights is self-contradictory (weights both
// increase on use and the highest-weight entry is evicted), so this
// implementation normalizes to standard LRU semantics — evict the least
// recently used entry — which matches the section title and the stated
// intent.
package synccache

import (
	"cmp"
	"container/list"
	"fmt"
	"slices"

	"gxplug/internal/graph"
)

// Stats counts cache activity; the Fig 11a harness and the engine's
// per-superstep observer read it.
type Stats struct {
	Hits   int64
	Misses int64
	// Evictions counts every entry dropped from the cache before the
	// owner let go of it: LRU capacity evictions and invalidations alike.
	// Evictions - Invalidations isolates capacity pressure.
	Evictions int64
	// Invalidations counts the subset of Evictions forced by remote
	// updates (Invalidate) rather than capacity; it is non-zero even for
	// unbounded caches under vertex-cut partitioning.
	Invalidations int64
	// DirtyEvictions counts evictions of not-yet-uploaded entries — for a
	// capacity eviction the caller must upload the returned row ("if the
	// chosen vertices were updated in previous iterations, corresponding
	// information will be uploaded"); for an invalidation the remote value
	// supersedes it and the local update is discarded.
	DirtyEvictions int64
	// DirtyOverwrites counts Puts that replaced a dirty entry with
	// authoritative data — local updates conflated with a fresh download.
	DirtyOverwrites int64
}

type entry struct {
	id    graph.VertexID
	row   []float64
	dirty bool
	elem  *list.Element
}

// Cache is a fixed-capacity LRU of vertex attribute rows.
type Cache struct {
	cap    int
	stride int
	m      map[graph.VertexID]*entry
	lru    *list.List // front = most recent
	stats  Stats
}

// New creates a cache holding at most capacity rows of the given stride.
func New(capacity, stride int) *Cache {
	if capacity <= 0 || stride <= 0 {
		panic(fmt.Sprintf("synccache: capacity %d stride %d", capacity, stride))
	}
	return &Cache{
		cap:    capacity,
		stride: stride,
		m:      make(map[graph.VertexID]*entry, capacity),
		lru:    list.New(),
	}
}

// Len returns the resident entry count.
func (c *Cache) Len() int { return len(c.m) }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Get returns the cached row for id, counting a hit or miss. The returned
// slice aliases cache storage and stays valid until the entry is evicted.
func (c *Cache) Get(id graph.VertexID) ([]float64, bool) {
	e, ok := c.m[id]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.lru.MoveToFront(e.elem)
	return e.row, true
}

// Peek returns the cached row for id without touching the LRU order or
// the hit/miss counters. Bookkeeping reads — e.g. collecting dirty rows
// for a lazy upload — go through Peek so they neither distort the Fig
// 11a statistics nor promote entries the computation did not use.
func (c *Cache) Peek(id graph.VertexID) ([]float64, bool) {
	e, ok := c.m[id]
	if !ok {
		return nil, false
	}
	return e.row, true
}

// Evicted describes an entry pushed out by Put. The Row slice is the
// evicted entry's storage: the cache no longer references it, so the
// caller takes ownership.
type Evicted struct {
	ID    graph.VertexID
	Row   []float64
	Dirty bool
}

// PutResult reports the side effects of a Put.
type PutResult struct {
	// Evicted is the entry pushed out to make room; meaningful only when
	// DidEvict is set.
	Evicted  Evicted
	DidEvict bool
	// OverwroteDirty reports that id was already resident AND dirty: the
	// authoritative download replaced a local update that had not been
	// uploaded yet. The entry is clean afterwards — callers that meant to
	// keep the local value must re-Update.
	OverwroteDirty bool
}

// Put inserts or refreshes a row (copied) with authoritative data from
// the upper system. Put always leaves the entry clean: a fresh download
// supersedes whatever was cached, including a pending local update —
// refreshing over a dirty row would otherwise conflate locally-updated
// and clean state and force a spurious re-upload at flush. The result
// reports whether dirty data was overwritten and, if the cache was full,
// which least-recently-used entry was evicted so the agent can upload it
// if it was dirty.
func (c *Cache) Put(id graph.VertexID, row []float64) PutResult {
	if len(row) != c.stride {
		panic(fmt.Sprintf("synccache: row width %d, stride %d", len(row), c.stride))
	}
	var res PutResult
	if e, ok := c.m[id]; ok {
		copy(e.row, row)
		if e.dirty {
			e.dirty = false
			c.stats.DirtyOverwrites++
			res.OverwroteDirty = true
		}
		c.lru.MoveToFront(e.elem)
		return res
	}
	if len(c.m) >= c.cap {
		back := c.lru.Back()
		old := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.m, old.id)
		c.stats.Evictions++
		if old.dirty {
			c.stats.DirtyEvictions++
		}
		res.Evicted = Evicted{ID: old.id, Row: old.row, Dirty: old.dirty}
		res.DidEvict = true
	}
	e := &entry{id: id, row: append([]float64(nil), row...)}
	e.elem = c.lru.PushFront(e)
	c.m[id] = e
	return res
}

// Update overwrites the row of a cached entry with computation results
// and marks it dirty (updated locally, not yet uploaded to the upper
// system). It reports whether the entry was present.
func (c *Cache) Update(id graph.VertexID, row []float64) bool {
	e, ok := c.m[id]
	if !ok {
		return false
	}
	copy(e.row, row)
	e.dirty = true
	c.lru.MoveToFront(e.elem)
	return true
}

// Invalidate drops an entry (a remote node updated the vertex, so the
// cached copy is stale). Dirty state is discarded — the remote value
// supersedes the local one — but the drop is still counted: an
// invalidation is an eviction the agent did not choose, and the
// Evictions/DirtyEvictions counters exist to count exactly these
// departures. It reports whether a dirty entry was discarded.
func (c *Cache) Invalidate(id graph.VertexID) (droppedDirty bool) {
	e, ok := c.m[id]
	if !ok {
		return false
	}
	c.lru.Remove(e.elem)
	delete(c.m, id)
	c.stats.Evictions++
	c.stats.Invalidations++
	if e.dirty {
		c.stats.DirtyEvictions++
	}
	return e.dirty
}

// Dirty returns the IDs of all dirty entries in ascending ID order.
// This is the agent's contribution to lazy uploading: dirty entries are
// uploaded only when queried (or at flush). The order is fixed so that
// everything downstream — the filter against the query queue, the
// upload batch, the boundary traffic it charges — is independent of
// map iteration order.
func (c *Cache) Dirty() []graph.VertexID {
	var out []graph.VertexID
	for id, e := range c.m {
		if e.dirty {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}

// MarkClean clears the dirty flag after an upload.
func (c *Cache) MarkClean(id graph.VertexID) {
	if e, ok := c.m[id]; ok {
		e.dirty = false
	}
}

// FlushDirty returns all dirty entries in ascending ID order and marks
// them clean — the end-of-run upload that makes the upper system's
// state authoritative again. Ordered for the same reason Dirty is: the
// flush batch must not depend on map iteration order.
func (c *Cache) FlushDirty() []Evicted {
	var out []Evicted
	for id, e := range c.m {
		if e.dirty {
			out = append(out, Evicted{ID: id, Row: e.row, Dirty: true})
			e.dirty = false
		}
	}
	slices.SortFunc(out, func(a, b Evicted) int { return cmp.Compare(a.ID, b.ID) })
	return out
}

// QueryQueue is the global query queue of lazy uploading (§III-B2b):
// every agent pushes the vertex IDs it will need next iteration; the
// union is broadcast; each agent answers with the dirty vertices it owns
// that appear in the union.
type QueryQueue struct {
	need map[graph.VertexID]bool
}

// NewQueryQueue creates an empty queue.
func NewQueryQueue() *QueryQueue {
	return &QueryQueue{need: make(map[graph.VertexID]bool)}
}

// Push adds one agent's needed vertices.
func (q *QueryQueue) Push(ids []graph.VertexID) {
	for _, id := range ids {
		q.need[id] = true
	}
}

// Len returns the number of distinct queried vertices.
func (q *QueryQueue) Len() int { return len(q.need) }

// Needed reports whether a vertex is queried.
func (q *QueryQueue) Needed(id graph.VertexID) bool { return q.need[id] }

// Filter returns the subset of ids that are queried — the vertices an
// agent must actually upload to the global data queue.
func (q *QueryQueue) Filter(ids []graph.VertexID) []graph.VertexID {
	var out []graph.VertexID
	for _, id := range ids {
		if q.need[id] {
			out = append(out, id)
		}
	}
	return out
}
