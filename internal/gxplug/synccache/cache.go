// Package synccache implements the inter-iteration synchronization
// caching of §III-B2: an agent-local vertex cache that avoids
// re-downloading unchanged vertices from the upper system every
// iteration, plus the dirty-tracking that drives lazy uploading through
// the global query/data queues.
//
// The paper describes the cache as "organized in a least recently used
// manner"; its prose about weights is self-contradictory (weights both
// increase on use and the highest-weight entry is evicted), so this
// implementation normalizes to standard LRU semantics — evict the least
// recently used entry — which matches the section title and the stated
// intent.
package synccache

import (
	"container/list"
	"fmt"

	"gxplug/internal/graph"
)

// Stats counts cache activity; the Fig 11a harness reads it.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// DirtyEvictions counts evictions of not-yet-uploaded entries — each
	// forces an immediate upload ("if the chosen vertices were updated in
	// previous iterations, corresponding information will be uploaded").
	DirtyEvictions int64
}

type entry struct {
	id    graph.VertexID
	row   []float64
	dirty bool
	elem  *list.Element
}

// Cache is a fixed-capacity LRU of vertex attribute rows.
type Cache struct {
	cap    int
	stride int
	m      map[graph.VertexID]*entry
	lru    *list.List // front = most recent
	stats  Stats
}

// New creates a cache holding at most capacity rows of the given stride.
func New(capacity, stride int) *Cache {
	if capacity <= 0 || stride <= 0 {
		panic(fmt.Sprintf("synccache: capacity %d stride %d", capacity, stride))
	}
	return &Cache{
		cap:    capacity,
		stride: stride,
		m:      make(map[graph.VertexID]*entry, capacity),
		lru:    list.New(),
	}
}

// Len returns the resident entry count.
func (c *Cache) Len() int { return len(c.m) }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Get returns the cached row for id, counting a hit or miss. The returned
// slice aliases cache storage and stays valid until the entry is evicted.
func (c *Cache) Get(id graph.VertexID) ([]float64, bool) {
	e, ok := c.m[id]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.lru.MoveToFront(e.elem)
	return e.row, true
}

// Evicted describes an entry pushed out by Put.
type Evicted struct {
	ID    graph.VertexID
	Row   []float64
	Dirty bool
}

// Put inserts or refreshes a row (copied). If the cache is full, the
// least recently used entry is evicted and returned so the agent can
// upload it if it was dirty.
func (c *Cache) Put(id graph.VertexID, row []float64) (ev Evicted, evicted bool) {
	if len(row) != c.stride {
		panic(fmt.Sprintf("synccache: row width %d, stride %d", len(row), c.stride))
	}
	if e, ok := c.m[id]; ok {
		copy(e.row, row)
		c.lru.MoveToFront(e.elem)
		return Evicted{}, false
	}
	if len(c.m) >= c.cap {
		back := c.lru.Back()
		old := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.m, old.id)
		c.stats.Evictions++
		if old.dirty {
			c.stats.DirtyEvictions++
		}
		ev = Evicted{ID: old.id, Row: old.row, Dirty: old.dirty}
		evicted = true
	}
	e := &entry{id: id, row: append([]float64(nil), row...)}
	e.elem = c.lru.PushFront(e)
	c.m[id] = e
	return ev, evicted
}

// Update overwrites the row of a cached entry with computation results
// and marks it dirty (updated locally, not yet uploaded to the upper
// system). It reports whether the entry was present.
func (c *Cache) Update(id graph.VertexID, row []float64) bool {
	e, ok := c.m[id]
	if !ok {
		return false
	}
	copy(e.row, row)
	e.dirty = true
	c.lru.MoveToFront(e.elem)
	return true
}

// Invalidate drops an entry (a remote node updated the vertex, so the
// cached copy is stale). Dirty state is discarded: the remote value
// supersedes the local one.
func (c *Cache) Invalidate(id graph.VertexID) {
	if e, ok := c.m[id]; ok {
		c.lru.Remove(e.elem)
		delete(c.m, id)
	}
}

// Dirty returns the IDs of all dirty entries, in no particular order.
// This is the agent's contribution to lazy uploading: dirty entries are
// uploaded only when queried (or at flush).
func (c *Cache) Dirty() []graph.VertexID {
	var out []graph.VertexID
	for id, e := range c.m {
		if e.dirty {
			out = append(out, id)
		}
	}
	return out
}

// MarkClean clears the dirty flag after an upload.
func (c *Cache) MarkClean(id graph.VertexID) {
	if e, ok := c.m[id]; ok {
		e.dirty = false
	}
}

// FlushDirty returns all dirty entries and marks them clean — the
// end-of-run upload that makes the upper system's state authoritative
// again.
func (c *Cache) FlushDirty() []Evicted {
	var out []Evicted
	for id, e := range c.m {
		if e.dirty {
			out = append(out, Evicted{ID: id, Row: e.row, Dirty: true})
			e.dirty = false
		}
	}
	return out
}

// QueryQueue is the global query queue of lazy uploading (§III-B2b):
// every agent pushes the vertex IDs it will need next iteration; the
// union is broadcast; each agent answers with the dirty vertices it owns
// that appear in the union.
type QueryQueue struct {
	need map[graph.VertexID]bool
}

// NewQueryQueue creates an empty queue.
func NewQueryQueue() *QueryQueue {
	return &QueryQueue{need: make(map[graph.VertexID]bool)}
}

// Push adds one agent's needed vertices.
func (q *QueryQueue) Push(ids []graph.VertexID) {
	for _, id := range ids {
		q.need[id] = true
	}
}

// Len returns the number of distinct queried vertices.
func (q *QueryQueue) Len() int { return len(q.need) }

// Needed reports whether a vertex is queried.
func (q *QueryQueue) Needed(id graph.VertexID) bool { return q.need[id] }

// Filter returns the subset of ids that are queried — the vertices an
// agent must actually upload to the global data queue.
func (q *QueryQueue) Filter(ids []graph.VertexID) []graph.VertexID {
	var out []graph.VertexID
	for _, id := range ids {
		if q.need[id] {
			out = append(out, id)
		}
	}
	return out
}
