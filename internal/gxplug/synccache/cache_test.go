package synccache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gxplug/internal/graph"
)

func TestNewPanics(t *testing.T) {
	for _, c := range [][2]int{{0, 1}, {1, 0}} {
		func() {
			defer func() { recover() }()
			New(c[0], c[1])
			t.Errorf("New(%d,%d) accepted", c[0], c[1])
		}()
	}
}

func TestGetMissThenHit(t *testing.T) {
	c := New(4, 2)
	if _, ok := c.Get(7); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(7, []float64{1, 2})
	row, ok := c.Get(7)
	if !ok || row[0] != 1 || row[1] != 2 {
		t.Fatalf("get after put: %v %v", row, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestPutCopiesRow(t *testing.T) {
	c := New(2, 1)
	src := []float64{5}
	c.Put(1, src)
	src[0] = 99
	row, _ := c.Get(1)
	if row[0] != 5 {
		t.Fatal("Put aliased caller's slice")
	}
}

func TestPutWrongWidthPanics(t *testing.T) {
	c := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-width row accepted")
		}
	}()
	c.Put(1, []float64{1})
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(2, 1)
	c.Put(1, []float64{1})
	c.Put(2, []float64{2})
	c.Get(1) // 1 is now most recent; 2 is LRU
	pr := c.Put(3, []float64{3})
	if !pr.DidEvict || pr.Evicted.ID != 2 {
		t.Fatalf("evicted %+v, want vertex 2", pr)
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("recently used entry evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestPutExistingRefreshesNoEvict(t *testing.T) {
	c := New(1, 1)
	c.Put(1, []float64{1})
	pr := c.Put(1, []float64{2})
	if pr.DidEvict {
		t.Fatal("refreshing an entry evicted something")
	}
	if pr.OverwroteDirty {
		t.Fatal("refreshing a clean entry reported a dirty overwrite")
	}
	row, _ := c.Get(1)
	if row[0] != 2 {
		t.Fatal("refresh did not update value")
	}
}

// Regression: a fresh authoritative download over a dirty row must clear
// the dirty flag (and report the overwrite) — leaving it set conflates
// local-updated and clean state and causes a spurious re-upload at flush.
func TestPutOverDirtyClearsDirty(t *testing.T) {
	c := New(2, 1)
	c.Put(1, []float64{1})
	c.Update(1, []float64{5})
	pr := c.Put(1, []float64{7}) // authoritative refresh supersedes the update
	if !pr.OverwroteDirty {
		t.Fatal("dirty overwrite not reported")
	}
	if len(c.Dirty()) != 0 {
		t.Fatal("Put left the refreshed entry dirty")
	}
	if fl := c.FlushDirty(); len(fl) != 0 {
		t.Fatalf("flush after authoritative refresh uploaded %d rows, want 0", len(fl))
	}
	if row, _ := c.Get(1); row[0] != 7 {
		t.Fatalf("refresh lost the downloaded value: %v", row)
	}
	if s := c.Stats(); s.DirtyOverwrites != 1 {
		t.Fatalf("stats %+v, want 1 dirty overwrite", s)
	}
}

func TestDirtyLifecycle(t *testing.T) {
	c := New(4, 1)
	c.Put(1, []float64{1})
	c.Put(2, []float64{2})
	if !c.Update(1, []float64{10}) {
		t.Fatal("update of resident entry failed")
	}
	if c.Update(9, []float64{9}) {
		t.Fatal("update of missing entry succeeded")
	}
	d := c.Dirty()
	if len(d) != 1 || d[0] != 1 {
		t.Fatalf("dirty = %v, want [1]", d)
	}
	c.MarkClean(1)
	if len(c.Dirty()) != 0 {
		t.Fatal("MarkClean left dirt")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := New(1, 1)
	c.Put(1, []float64{1})
	c.Update(1, []float64{5})
	pr := c.Put(2, []float64{2})
	if !pr.DidEvict || !pr.Evicted.Dirty || pr.Evicted.Row[0] != 5 {
		t.Fatalf("dirty eviction lost data: %+v", pr)
	}
	if c.Stats().DirtyEvictions != 1 {
		t.Fatalf("stats %+v", c.Stats())
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	c := New(2, 1)
	c.Put(1, []float64{1})
	c.Put(2, []float64{2})
	if _, ok := c.Peek(9); ok {
		t.Fatal("Peek found an absent entry")
	}
	if row, ok := c.Peek(1); !ok || row[0] != 1 {
		t.Fatalf("Peek(1) = %v %v", row, ok)
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("Peek counted: %+v", s)
	}
	// Peek must not promote: 1 stays LRU despite the Peek, so inserting a
	// third entry evicts it, not 2.
	if pr := c.Put(3, []float64{3}); !pr.DidEvict || pr.Evicted.ID != 1 {
		t.Fatalf("Peek changed LRU order: evicted %+v, want vertex 1", pr)
	}
}

// Regression: invalidations are evictions the agent did not choose and
// must be counted — otherwise cache stats undercount exactly the events
// the eviction counters exist for.
func TestInvalidateDiscards(t *testing.T) {
	c := New(2, 1)
	c.Put(1, []float64{1})
	c.Update(1, []float64{2})
	if !c.Invalidate(1) {
		t.Fatal("dirty drop not reported")
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("invalidated entry still resident")
	}
	if len(c.Dirty()) != 0 {
		t.Fatal("invalidate kept dirty state")
	}
	if s := c.Stats(); s.Evictions != 1 || s.DirtyEvictions != 1 || s.Invalidations != 1 {
		t.Fatalf("invalidation not counted: %+v", s)
	}
	c.Put(2, []float64{2})
	if c.Invalidate(2) {
		t.Fatal("clean drop reported dirty")
	}
	if s := c.Stats(); s.Evictions != 2 || s.DirtyEvictions != 1 || s.Invalidations != 2 {
		t.Fatalf("clean invalidation miscounted: %+v", s)
	}
	if c.Invalidate(42) { // absent: no-op
		t.Fatal("absent invalidation reported a dirty drop")
	}
	if s := c.Stats(); s.Evictions != 2 {
		t.Fatalf("absent invalidation counted: %+v", s)
	}
}

func TestFlushDirty(t *testing.T) {
	c := New(4, 1)
	c.Put(1, []float64{1})
	c.Put(2, []float64{2})
	c.Update(1, []float64{10})
	c.Update(2, []float64{20})
	fl := c.FlushDirty()
	if len(fl) != 2 {
		t.Fatalf("flushed %d, want 2", len(fl))
	}
	if len(c.Dirty()) != 0 {
		t.Fatal("flush left dirt")
	}
	if len(c.FlushDirty()) != 0 {
		t.Fatal("second flush not empty")
	}
}

func TestQueryQueue(t *testing.T) {
	q := NewQueryQueue()
	q.Push([]graph.VertexID{1, 2, 2, 3})
	if q.Len() != 3 {
		t.Fatalf("len %d, want 3 distinct", q.Len())
	}
	if !q.Needed(2) || q.Needed(9) {
		t.Fatal("Needed wrong")
	}
	got := q.Filter([]graph.VertexID{2, 5, 3, 9})
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("filter = %v, want [2 3]", got)
	}
}

// Property: cache never exceeds capacity, and a Get immediately after Put
// always hits — under arbitrary operation sequences.
func TestCacheInvariantsQuick(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw)%8 + 1
		c := New(capacity, 1)
		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < 200; op++ {
			id := graph.VertexID(rng.Intn(20))
			switch rng.Intn(4) {
			case 0:
				c.Put(id, []float64{float64(id)})
				if _, ok := c.Get(id); !ok {
					return false
				}
			case 1:
				c.Get(id)
			case 2:
				c.Update(id, []float64{float64(id) * 2})
			case 3:
				c.Invalidate(id)
			}
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: an entry written by Update is either still resident and dirty,
// or was reported out through a dirty eviction/flush, or explicitly
// superseded by authoritative data (Put refresh, Invalidate) — updates are
// never silently lost.
func TestNoLostUpdatesQuick(t *testing.T) {
	f := func(seed int64) bool {
		c := New(3, 1)
		rng := rand.New(rand.NewSource(seed))
		pending := map[graph.VertexID]bool{} // updated, not yet surfaced
		for op := 0; op < 300; op++ {
			id := graph.VertexID(rng.Intn(10))
			switch rng.Intn(3) {
			case 0:
				pr := c.Put(id, []float64{1})
				if pr.DidEvict && pr.Evicted.Dirty {
					delete(pending, pr.Evicted.ID) // surfaced via eviction
				}
				if pr.OverwroteDirty {
					delete(pending, id) // authoritative refresh superseded it
				}
			case 1:
				if c.Update(id, []float64{2}) {
					pending[id] = true
				}
			case 2:
				c.Invalidate(id) // remote overwrite: local update superseded
				delete(pending, id)
			}
		}
		for _, ev := range c.FlushDirty() {
			delete(pending, ev.ID)
		}
		return len(pending) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
