package synccache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gxplug/internal/graph"
)

func TestNewPanics(t *testing.T) {
	for _, c := range [][2]int{{0, 1}, {1, 0}} {
		func() {
			defer func() { recover() }()
			New(c[0], c[1])
			t.Errorf("New(%d,%d) accepted", c[0], c[1])
		}()
	}
}

func TestGetMissThenHit(t *testing.T) {
	c := New(4, 2)
	if _, ok := c.Get(7); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(7, []float64{1, 2})
	row, ok := c.Get(7)
	if !ok || row[0] != 1 || row[1] != 2 {
		t.Fatalf("get after put: %v %v", row, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestPutCopiesRow(t *testing.T) {
	c := New(2, 1)
	src := []float64{5}
	c.Put(1, src)
	src[0] = 99
	row, _ := c.Get(1)
	if row[0] != 5 {
		t.Fatal("Put aliased caller's slice")
	}
}

func TestPutWrongWidthPanics(t *testing.T) {
	c := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-width row accepted")
		}
	}()
	c.Put(1, []float64{1})
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(2, 1)
	c.Put(1, []float64{1})
	c.Put(2, []float64{2})
	c.Get(1) // 1 is now most recent; 2 is LRU
	ev, evicted := c.Put(3, []float64{3})
	if !evicted || ev.ID != 2 {
		t.Fatalf("evicted %+v, want vertex 2", ev)
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("recently used entry evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestPutExistingRefreshesNoEvict(t *testing.T) {
	c := New(1, 1)
	c.Put(1, []float64{1})
	_, evicted := c.Put(1, []float64{2})
	if evicted {
		t.Fatal("refreshing an entry evicted something")
	}
	row, _ := c.Get(1)
	if row[0] != 2 {
		t.Fatal("refresh did not update value")
	}
}

func TestDirtyLifecycle(t *testing.T) {
	c := New(4, 1)
	c.Put(1, []float64{1})
	c.Put(2, []float64{2})
	if !c.Update(1, []float64{10}) {
		t.Fatal("update of resident entry failed")
	}
	if c.Update(9, []float64{9}) {
		t.Fatal("update of missing entry succeeded")
	}
	d := c.Dirty()
	if len(d) != 1 || d[0] != 1 {
		t.Fatalf("dirty = %v, want [1]", d)
	}
	c.MarkClean(1)
	if len(c.Dirty()) != 0 {
		t.Fatal("MarkClean left dirt")
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := New(1, 1)
	c.Put(1, []float64{1})
	c.Update(1, []float64{5})
	ev, evicted := c.Put(2, []float64{2})
	if !evicted || !ev.Dirty || ev.Row[0] != 5 {
		t.Fatalf("dirty eviction lost data: %+v", ev)
	}
	if c.Stats().DirtyEvictions != 1 {
		t.Fatalf("stats %+v", c.Stats())
	}
}

func TestInvalidateDiscards(t *testing.T) {
	c := New(2, 1)
	c.Put(1, []float64{1})
	c.Update(1, []float64{2})
	c.Invalidate(1)
	if _, ok := c.Get(1); ok {
		t.Fatal("invalidated entry still resident")
	}
	if len(c.Dirty()) != 0 {
		t.Fatal("invalidate kept dirty state")
	}
	c.Invalidate(42) // absent: no-op
}

func TestFlushDirty(t *testing.T) {
	c := New(4, 1)
	c.Put(1, []float64{1})
	c.Put(2, []float64{2})
	c.Update(1, []float64{10})
	c.Update(2, []float64{20})
	fl := c.FlushDirty()
	if len(fl) != 2 {
		t.Fatalf("flushed %d, want 2", len(fl))
	}
	if len(c.Dirty()) != 0 {
		t.Fatal("flush left dirt")
	}
	if len(c.FlushDirty()) != 0 {
		t.Fatal("second flush not empty")
	}
}

func TestQueryQueue(t *testing.T) {
	q := NewQueryQueue()
	q.Push([]graph.VertexID{1, 2, 2, 3})
	if q.Len() != 3 {
		t.Fatalf("len %d, want 3 distinct", q.Len())
	}
	if !q.Needed(2) || q.Needed(9) {
		t.Fatal("Needed wrong")
	}
	got := q.Filter([]graph.VertexID{2, 5, 3, 9})
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("filter = %v, want [2 3]", got)
	}
}

// Property: cache never exceeds capacity, and a Get immediately after Put
// always hits — under arbitrary operation sequences.
func TestCacheInvariantsQuick(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw)%8 + 1
		c := New(capacity, 1)
		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < 200; op++ {
			id := graph.VertexID(rng.Intn(20))
			switch rng.Intn(4) {
			case 0:
				c.Put(id, []float64{float64(id)})
				if _, ok := c.Get(id); !ok {
					return false
				}
			case 1:
				c.Get(id)
			case 2:
				c.Update(id, []float64{float64(id) * 2})
			case 3:
				c.Invalidate(id)
			}
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: an entry written by Update is either still resident and dirty,
// or was reported out through a dirty eviction/flush — updates are never
// silently lost.
func TestNoLostUpdatesQuick(t *testing.T) {
	f := func(seed int64) bool {
		c := New(3, 1)
		rng := rand.New(rand.NewSource(seed))
		pending := map[graph.VertexID]bool{} // updated, not yet surfaced
		for op := 0; op < 300; op++ {
			id := graph.VertexID(rng.Intn(10))
			switch rng.Intn(3) {
			case 0:
				ev, evicted := c.Put(id, []float64{1})
				if evicted && ev.Dirty {
					delete(pending, ev.ID) // surfaced via eviction
				}
			case 1:
				if c.Update(id, []float64{2}) {
					pending[id] = true
				}
			case 2:
				c.Invalidate(id) // remote overwrite: local update superseded
				delete(pending, id)
			}
		}
		for _, ev := range c.FlushDirty() {
			delete(pending, ev.ID)
		}
		return len(pending) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
