package template

import (
	"gxplug/internal/graph"
)

// IterStats reports what one synchronous iteration did; cost models hook
// on these numbers.
type IterStats struct {
	// Iteration is the zero-based index.
	Iteration int
	// Edges is the number of edge triplets MSGGen processed.
	Edges int
	// Applied is the number of vertices MSGApply ran on.
	Applied int
	// Changed is the number of vertices that changed.
	Changed int
}

// Drive executes an algorithm sequentially with exact synchronous
// semantics — the oracle loop every engine in this repository must agree
// with, and the compute core of the standalone baselines. onIter, if not
// nil, is called after each iteration; returning false stops the run
// early (baselines use it to inject cost accounting and caps).
func Drive(g *graph.Graph, a Algorithm, onIter func(IterStats) bool) ([]float64, int) {
	n := g.NumVertices()
	aw, mw := a.AttrWidth(), a.MsgWidth()
	ctx := &Context{
		NumVertices: n,
		OutDeg:      func(v graph.VertexID) int { return g.OutDegree(v) },
		InDeg:       func(v graph.VertexID) int { return g.InDegree(v) },
	}
	attrs := make([]float64, n*aw)
	for v := 0; v < n; v++ {
		a.Init(ctx, graph.VertexID(v), attrs[v*aw:(v+1)*aw])
	}
	active := InitialFrontier(a, n)
	hints := a.Hints()
	iters := 0
	for {
		if hints.MaxIterations > 0 && iters >= hints.MaxIterations {
			break
		}
		anyActive := hints.GenAll
		for _, ac := range active {
			if ac {
				anyActive = true
				break
			}
		}
		if !anyActive && !hints.ApplyAll {
			break
		}

		ctx.Iteration = iters
		acc := make([]float64, n*mw)
		recv := make([]bool, n)
		for v := 0; v < n; v++ {
			a.MergeIdentity(acc[v*mw : (v+1)*mw])
		}
		st := IterStats{Iteration: iters}
		for v := 0; v < n; v++ {
			if !hints.GenAll && !active[v] {
				continue
			}
			src := graph.VertexID(v)
			g.OutEdges(src, func(dst graph.VertexID, w float64) {
				st.Edges++
				a.MSGGen(ctx, src, dst, w, attrs[v*aw:(v+1)*aw], func(d graph.VertexID, msg []float64) {
					a.MSGMerge(acc[int(d)*mw:int(d)*mw+mw], msg)
					recv[d] = true
				})
			})
		}
		next := make([]bool, n)
		changed := false
		for v := 0; v < n; v++ {
			if !recv[v] && !hints.ApplyAll {
				continue
			}
			st.Applied++
			if a.MSGApply(ctx, graph.VertexID(v), attrs[v*aw:(v+1)*aw], acc[v*mw:(v+1)*mw], recv[v]) {
				next[v] = true
				changed = true
				st.Changed++
			}
		}
		active = next
		iters++
		if onIter != nil && !onIter(st) {
			break
		}
		if !changed {
			break
		}
	}
	return attrs, iters
}
