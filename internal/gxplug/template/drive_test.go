package template_test

import (
	"math"
	"testing"

	"gxplug/internal/algos"
	"gxplug/internal/gen"
	"gxplug/internal/graph"
	"gxplug/internal/gxplug/template"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(gen.RMATConfig{
		NumVertices: 200, NumEdges: 1500, A: 0.57, B: 0.19, C: 0.19, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDriveMatchesReference(t *testing.T) {
	g := testGraph(t)
	pr := algos.NewPageRank()
	got, iters := template.Drive(g, pr, nil)
	want, wantIters := algos.RefPageRank(g, pr.Damping, pr.Tol, 0)
	if iters != wantIters {
		t.Fatalf("iterations %d != %d", iters, wantIters)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("rank %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestDriveIterStats(t *testing.T) {
	g := testGraph(t)
	pr := algos.NewPageRank()
	var seen []template.IterStats
	template.Drive(g, pr, func(st template.IterStats) bool {
		seen = append(seen, st)
		return true
	})
	if len(seen) == 0 {
		t.Fatal("no iterations observed")
	}
	for i, st := range seen {
		if st.Iteration != i {
			t.Fatalf("iteration numbering broken at %d: %+v", i, st)
		}
		// PageRank is GenAll: every iteration touches every edge.
		if int64(st.Edges) != g.NumEdges() {
			t.Fatalf("iteration %d processed %d edges, want %d", i, st.Edges, g.NumEdges())
		}
		if st.Applied != g.NumVertices() {
			t.Fatalf("iteration %d applied %d vertices, want all", i, st.Applied)
		}
	}
	// Changed counts must reach zero by the final iteration.
	if last := seen[len(seen)-1]; last.Changed != 0 {
		t.Fatalf("final iteration still changed %d vertices", last.Changed)
	}
}

func TestDriveEarlyStop(t *testing.T) {
	g := testGraph(t)
	pr := algos.NewPageRank()
	_, iters := template.Drive(g, pr, func(st template.IterStats) bool {
		return st.Iteration < 2 // stop after the third iteration
	})
	if iters != 3 {
		t.Fatalf("early stop ran %d iterations, want 3", iters)
	}
}

func TestDriveFrontierDriven(t *testing.T) {
	// SSSP on a path: iteration i touches exactly one edge.
	const n = 10
	edges := make([]graph.Edge, 0, n-1)
	for v := 0; v < n-1; v++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID(v + 1), Weight: 1})
	}
	g := graph.MustFromEdges(n, edges)
	alg := algos.NewSSSPBF([]graph.VertexID{0})
	var perIter []int
	template.Drive(g, alg, func(st template.IterStats) bool {
		perIter = append(perIter, st.Edges)
		return true
	})
	for i, e := range perIter {
		if i < n-1 && e != 1 {
			t.Fatalf("iteration %d processed %d edges on a path, want 1", i, e)
		}
	}
}

func TestInitialFrontier(t *testing.T) {
	pr := algos.NewPageRank()
	all := template.InitialFrontier(pr, 5)
	for v, a := range all {
		if !a {
			t.Fatalf("PageRank frontier not all-active at %d", v)
		}
	}
	sssp := algos.NewSSSPBF([]graph.VertexID{2})
	f := template.InitialFrontier(sssp, 5)
	for v, a := range f {
		if a != (v == 2) {
			t.Fatalf("SSSP frontier wrong at %d", v)
		}
	}
	// Out-of-range sources are ignored, not a panic.
	far := algos.NewSSSPBF([]graph.VertexID{99})
	f = template.InitialFrontier(far, 5)
	for _, a := range f {
		if a {
			t.Fatal("out-of-range source activated something")
		}
	}
}
