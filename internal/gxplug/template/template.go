// Package template defines GX-Plug's iteration-based graph algorithm
// template (§IV-A1): an algorithm is three functions — MSGGen, MSGMerge
// and MSGApply — over flat float64 attribute and message rows. Engines
// arrange the calls in whatever order their computation model dictates
// (BSP runs Gen→Merge→Apply, GAS runs Merge→Apply→Gen, §IV-B2); the
// algorithm code is identical either way, which is the template's point.
//
// Attributes and messages are fixed-width float64 rows so that blocks of
// them serialize to shared memory byte-for-byte with no reflection (the
// data packager of §IV-B1).
package template

import (
	"gxplug/internal/graph"
)

// Context carries the per-iteration information an algorithm may read.
type Context struct {
	// Iteration is the zero-based iteration number.
	Iteration int
	// NumVertices is the global vertex count.
	NumVertices int
	// OutDeg and InDeg expose global degrees (upper systems precompute
	// them during loading, as GraphX and PowerGraph both do).
	OutDeg func(graph.VertexID) int
	InDeg  func(graph.VertexID) int
}

// Emit delivers one message to a destination vertex during MSGGen.
type Emit func(dst graph.VertexID, msg []float64)

// Algorithm is the template implemented per graph algorithm. All methods
// must be safe for concurrent use on disjoint data: MSGGen runs data-
// parallel over triplets on the accelerator, MSGApply over vertices.
type Algorithm interface {
	// Name identifies the algorithm in harness output.
	Name() string

	// AttrWidth is the per-vertex attribute row width.
	AttrWidth() int
	// MsgWidth is the message row width.
	MsgWidth() int

	// Init fills a vertex's initial attribute row.
	Init(ctx *Context, id graph.VertexID, attr []float64)

	// MSGGen computes the initial messages for one edge triplet: src and
	// dst with the source's current attributes ("the computation function
	// for calculating the initial results with vertex and edge blocks and
	// transforming them into initial messages").
	MSGGen(ctx *Context, src, dst graph.VertexID, w float64, srcAttr []float64, emit Emit)

	// MergeIdentity writes the identity element of the merge into msg
	// (e.g. +Inf for min-merges, 0 for sums).
	MergeIdentity(msg []float64)
	// MSGMerge folds msg into acc. It must be associative and commutative:
	// merging happens in parallel on the accelerator and again across
	// distributed nodes.
	MSGMerge(acc, msg []float64)

	// MSGApply applies the merged message to a vertex and reports whether
	// the vertex changed (changed vertices are active next iteration).
	// received is false when no message arrived for the vertex this
	// iteration (only possible when ApplyAll is true).
	MSGApply(ctx *Context, id graph.VertexID, attr, msg []float64, received bool) bool

	// Hints tell engines how to drive and cost the iteration.
	Hints() Hints
}

// Hints describes an algorithm's iteration behaviour and device cost.
type Hints struct {
	// GenAll: run MSGGen over every edge each iteration regardless of the
	// active frontier (PageRank and LP recompute from all contributions;
	// SSSP and CC are frontier-driven).
	GenAll bool
	// ApplyAll: run MSGApply on every vertex each iteration, even those
	// that received no message (PageRank's base-rank term).
	ApplyAll bool
	// MaxIterations caps the iteration count; 0 means run to convergence.
	MaxIterations int
	// OpsPerEdge / OpsPerVertex calibrate the device cost model.
	OpsPerEdge   float64
	OpsPerVertex float64
	// Incremental declares the algorithm safe for trajectory-replay
	// incremental recomputation: its per-superstep results depend only on
	// the previous superstep's attributes and frontier, the incident-edge
	// structure, and the degrees the Context exposes — never on hidden
	// state. All template algorithms satisfy this structurally; the flag
	// is an explicit opt-in so new algorithms state the property.
	Incremental bool
}

// InitialFrontier returns the initially active vertices for an algorithm.
// Algorithms that implement the optional Sourced interface start from
// their sources; everything else starts all-active.
func InitialFrontier(a Algorithm, numV int) []bool {
	active := make([]bool, numV)
	if s, ok := a.(Sourced); ok {
		for _, v := range s.Sources() {
			if int(v) < numV {
				active[v] = true
			}
		}
		return active
	}
	for i := range active {
		active[i] = true
	}
	return active
}

// Sourced is implemented by algorithms whose computation starts from
// designated source vertices (SSSP).
type Sourced interface {
	Sources() []graph.VertexID
}

// InlineGen is an optional allocation-free fast path for the common case
// of one message per edge, delivered to the triplet's destination.
// MSGGenInto writes that message into msg (caller-supplied, MsgWidth
// wide) and reports whether a message was produced; msg contents are
// unspecified when it returns false. Implementations must produce exactly
// the messages MSGGen emits — executors are free to use either path, and
// results must be bit-identical. Like MSGGen it must be safe for
// concurrent calls on disjoint data (msg is the caller's scratch, one per
// worker).
type InlineGen interface {
	MSGGenInto(ctx *Context, src, dst graph.VertexID, w float64, srcAttr, msg []float64) bool
}
