package harness

import (
	"fmt"
	"strings"
	"time"

	"gxplug/internal/algos"
	"gxplug/internal/engine"
	"gxplug/internal/engine/powergraph"
	"gxplug/internal/gen"
	"gxplug/internal/gxplug"
)

// Cache-capacity sweep (Fig 11a-adjacent): the paper's synchronization
// cache is "organized in a least recently used manner" — bounded, with
// eviction part of the design — but Fig 11a only compares caching on/off
// at full capacity. This sweep walks the capacity axis: runtime, hit
// rate, evictions and dirty spills of SSSP-BF on PowerGraph+GPU as the
// per-agent cache shrinks from the full vertex table to 1/8 of a node's
// share. Results are bit-identical across the whole sweep (bounding the
// cache trades boundary traffic for memory, never values); hit rate is
// non-decreasing in capacity.

// cacheCapPoints lists the swept capacity fractions, smallest first. One
// structure carries both label and denominator so the two cannot drift.
var cacheCapPoints = []struct {
	Label string
	Den   int
}{{"1/8", 8}, {"1/4", 4}, {"1/2", 2}, {"1", 1}}

// CacheCapFractions lists the swept capacity fraction labels, smallest
// first.
func CacheCapFractions() []string {
	out := make([]string, len(cacheCapPoints))
	for i, p := range cacheCapPoints {
		out[i] = p.Label
	}
	return out
}

// CacheCapResult holds one row per capacity fraction.
type CacheCapResult struct {
	Entries []CacheCapEntry
}

// CacheCapEntry is one sweep point.
type CacheCapEntry struct {
	// Fraction is the capacity as a fraction of a node's vertex-table
	// share ("1" runs unbounded: the cache sized to the full table).
	Fraction string
	// Capacity is the per-agent row bound handed to the engine (0 for
	// the unbounded point).
	Capacity int
	Time     time.Duration
	// HitRate is cache hits over hits+misses, summed over all agents.
	HitRate float64
	// Evictions counts capacity evictions only (remote invalidations
	// excluded — those happen regardless of the bound and would drown the
	// capacity-pressure signal); DirtySpills likewise. Both summed over
	// all agents.
	Evictions   int64
	DirtySpills int64
}

// CacheCapSweep measures the capacity/hit-rate trade-off on Orkut with
// the Fig 11a workload (SSSP-BF, PowerGraph+GPU, 4 nodes).
func CacheCapSweep(o Options) (*CacheCapResult, error) {
	g, err := load(gen.Orkut, o)
	if err != nil {
		return nil, err
	}
	const nodes = 4
	res := &CacheCapResult{}
	for _, point := range cacheCapPoints {
		capRows := 0 // "1": size to the node's table (unbounded)
		if point.Den > 1 {
			capRows = g.NumVertices() / (point.Den * nodes)
			if capRows < 1 {
				capRows = 1
			}
		}
		alg := algos.NewSSSPBF(algos.DefaultSources(g.NumVertices()))
		run, err := powergraph.Run(engine.Config{
			Nodes: nodes, Graph: g, Alg: alg,
			Plug:          []gxplug.Options{GPUPlug(o.Scale, 1)},
			CacheCapacity: capRows,
		})
		if err != nil {
			return nil, err
		}
		e := CacheCapEntry{Fraction: point.Label, Capacity: capRows, Time: run.Time}
		var hits, misses int64
		for _, as := range run.AgentStats {
			hits += as.CacheHits
			misses += as.CacheMisses
			e.Evictions += as.CacheEvictions - as.CacheInvalidations
			e.DirtySpills += as.DirtySpills
		}
		if hits+misses > 0 {
			e.HitRate = float64(hits) / float64(hits+misses)
		}
		res.Entries = append(res.Entries, e)
	}
	return res, nil
}

// Entry finds one sweep point by fraction label.
func (r *CacheCapResult) Entry(fraction string) (CacheCapEntry, bool) {
	for _, e := range r.Entries {
		if e.Fraction == fraction {
			return e, true
		}
	}
	return CacheCapEntry{}, false
}

// String renders the sweep.
func (r *CacheCapResult) String() string {
	var b strings.Builder
	header(&b, "Cache capacity sweep @ Orkut (SSSP-BF, PowerGraph+GPU)",
		"Capacity", "Rows/agent", "Time", "Hit rate", "CapEvictions", "DirtySpills")
	for _, e := range r.Entries {
		rows := fmt.Sprintf("%d", e.Capacity)
		if e.Capacity == 0 {
			rows = "full table"
		}
		fmt.Fprintf(&b, "%-16s%-16s%-16s%-16s%-16d%-16d\n",
			e.Fraction, rows, seconds(e.Time), fmt.Sprintf("%.1f%%", 100*e.HitRate),
			e.Evictions, e.DirtySpills)
	}
	return b.String()
}
