package harness

import (
	"fmt"
	"strings"
	"time"

	"gxplug/internal/algos"
	"gxplug/internal/engine"
	"gxplug/internal/engine/graphx"
	"gxplug/internal/engine/powergraph"
	"gxplug/internal/gen"
	"gxplug/internal/graph"
	"gxplug/internal/gxplug"
)

// Fig 10: pipeline shuffle — "Pipeline*" (optimal block size), "Pipeline"
// (fixed block count) and "WithoutPipeline" (the sequential five-step
// flow) on SSSP, PR and LP.

// Fig10Result holds one time per (algorithm, variant).
type Fig10Result struct {
	Entries []struct {
		Algo    string
		Variant string
		Time    time.Duration
	}
}

// Fig10Variants lists the three configurations, paper order.
func Fig10Variants() []string { return []string{"Pipeline*", "Pipeline", "WithoutPipeline"} }

func fig10Opts(variant string, o Options) (gxplug.Options, error) {
	opts := GPUPlug(o.Scale, 1)
	switch variant {
	case "Pipeline*":
		opts.Pipeline = true
		opts.OptimalBlockSize = true
	case "Pipeline":
		opts.Pipeline = true
		opts.OptimalBlockSize = false
		opts.FixedBlockCount = 32
	case "WithoutPipeline":
		opts.Pipeline = false
		opts.OptimalBlockSize = false
		opts.FixedBlockCount = 32
	default:
		return opts, fmt.Errorf("harness: unknown pipeline variant %q", variant)
	}
	return opts, nil
}

// Fig10 measures the three pipeline variants on PowerGraph+GPU at Orkut.
func Fig10(o Options) (*Fig10Result, error) {
	g, err := load(gen.Orkut, o)
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{}
	for _, alg := range fig8Algorithms(g) {
		for _, variant := range Fig10Variants() {
			opts, err := fig10Opts(variant, o)
			if err != nil {
				return nil, err
			}
			run, err := powergraph.Run(engine.Config{
				Nodes: 2, Graph: g, Alg: alg,
				Plug: []gxplug.Options{opts}, MaxIter: fig8MaxIter(alg),
			})
			if err != nil {
				return nil, err
			}
			res.Entries = append(res.Entries, struct {
				Algo    string
				Variant string
				Time    time.Duration
			}{alg.Name(), variant, run.Time})
		}
	}
	return res, nil
}

// Entry finds one bar.
func (r *Fig10Result) Entry(algo, variant string) (time.Duration, bool) {
	for _, e := range r.Entries {
		if e.Algo == algo && e.Variant == variant {
			return e.Time, true
		}
	}
	return 0, false
}

// String renders the figure.
func (r *Fig10Result) String() string {
	var b strings.Builder
	header(&b, "Fig 10: Pipeline Shuffle @ Orkut (PowerGraph+GPU)",
		"Algorithm", "Pipeline*", "Pipeline", "WithoutPipeline")
	for _, algo := range []string{"SSSP-BF", "PageRank", "LP"} {
		fmt.Fprintf(&b, "%-16s", algo)
		for _, v := range Fig10Variants() {
			t, _ := r.Entry(algo, v)
			fmt.Fprintf(&b, "%-16s", seconds(t))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig 11a: synchronization caching on GraphX and PowerGraph with Orkut
// and the uniform synthetic graph, SSSP-BF workload.

// Fig11aResult holds times with and without caching.
type Fig11aResult struct {
	Entries []struct {
		Engine  string
		Dataset gen.Dataset
		Caching bool
		Time    time.Duration
	}
}

// Fig11a measures ± caching.
func Fig11a(o Options) (*Fig11aResult, error) {
	res := &Fig11aResult{}
	engines := []struct {
		name string
		run  func(engine.Config) (*engine.Result, error)
	}{
		{"GraphX", graphx.Run},
		{"PowerGraph", powergraph.Run},
	}
	for _, d := range []gen.Dataset{gen.Orkut, gen.Syn4m} {
		g, err := load(d, o)
		if err != nil {
			return nil, err
		}
		alg := algos.NewSSSPBF(algos.DefaultSources(g.NumVertices()))
		for _, eng := range engines {
			for _, caching := range []bool{false, true} {
				opts := GPUPlug(o.Scale, 1)
				opts.Caching = caching
				run, err := eng.run(engine.Config{
					Nodes: 4, Graph: g, Alg: alg, Plug: []gxplug.Options{opts},
				})
				if err != nil {
					return nil, err
				}
				res.Entries = append(res.Entries, struct {
					Engine  string
					Dataset gen.Dataset
					Caching bool
					Time    time.Duration
				}{eng.name, d, caching, run.Time})
			}
		}
	}
	return res, nil
}

// Entry finds a bar.
func (r *Fig11aResult) Entry(engineName string, d gen.Dataset, caching bool) (time.Duration, bool) {
	for _, e := range r.Entries {
		if e.Engine == engineName && e.Dataset == d && e.Caching == caching {
			return e.Time, true
		}
	}
	return 0, false
}

// String renders the figure.
func (r *Fig11aResult) String() string {
	var b strings.Builder
	header(&b, "Fig 11a: Synchronization Caching (SSSP-BF)",
		"Engine", "Orkut", "Orkut+Cache", "Syn4m", "Syn4m+Cache")
	for _, eng := range []string{"GraphX", "PowerGraph"} {
		fmt.Fprintf(&b, "%-16s", eng)
		for _, cell := range []struct {
			d gen.Dataset
			c bool
		}{{gen.Orkut, false}, {gen.Orkut, true}, {gen.Syn4m, false}, {gen.Syn4m, true}} {
			t, _ := r.Entry(eng, cell.d, cell.c)
			fmt.Fprintf(&b, "%-16s", seconds(t))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig 11b: synchronization skipping — skipped vs total iterations of
// SSSP-BF on the synthetic graph, the road network, Wiki-topcats and
// LiveJournal.

// Fig11bResult counts skipped iterations per dataset.
type Fig11bResult struct {
	Entries []struct {
		Dataset gen.Dataset
		Skipped int
		Total   int
	}
}

// Fig11bDatasets lists the four bars.
func Fig11bDatasets() []gen.Dataset {
	return []gen.Dataset{gen.Syn4m, gen.WRN, gen.WikiTopcats, gen.LiveJournal}
}

// Fig11b counts skipped synchronizations.
func Fig11b(o Options) (*Fig11bResult, error) {
	res := &Fig11bResult{}
	for _, d := range Fig11bDatasets() {
		g, err := load(d, o)
		if err != nil {
			return nil, err
		}
		alg := algos.NewSSSPBF([]graph.VertexID{0})
		opts := GPUPlug(o.Scale, 1)
		run, err := graphx.Run(engine.Config{
			Nodes: 4, Graph: g, Alg: alg, Plug: []gxplug.Options{opts},
		})
		if err != nil {
			return nil, err
		}
		res.Entries = append(res.Entries, struct {
			Dataset gen.Dataset
			Skipped int
			Total   int
		}{d, run.SkippedSyncs, run.Iterations})
	}
	return res, nil
}

// Entry finds a bar.
func (r *Fig11bResult) Entry(d gen.Dataset) (skipped, total int, ok bool) {
	for _, e := range r.Entries {
		if e.Dataset == d {
			return e.Skipped, e.Total, true
		}
	}
	return 0, 0, false
}

// String renders the figure.
func (r *Fig11bResult) String() string {
	var b strings.Builder
	header(&b, "Fig 11b: Synchronization Skipping (SSSP-BF)",
		"Dataset", "Skipped", "Total", "Skip %")
	for _, e := range r.Entries {
		pct := 0.0
		if e.Total > 0 {
			pct = 100 * float64(e.Skipped) / float64(e.Total)
		}
		fmt.Fprintf(&b, "%-16s%-16d%-16d%-16.0f\n", e.Dataset, e.Skipped, e.Total, pct)
	}
	return b.String()
}
