package harness

import (
	"fmt"
	"strings"
	"time"

	"gxplug/internal/algos"
	"gxplug/internal/device"
	"gxplug/internal/engine"
	"gxplug/internal/engine/powergraph"
	"gxplug/internal/gen"
	"gxplug/internal/graph"
	"gxplug/internal/gxplug"
	"gxplug/internal/gxplug/balance"
	"gxplug/internal/gxplug/template"
)

// Fig 12: workload balancing. (a) fixed hardware, tuned partitioning
// (Lemma 2); (b) fixed partitioning, tuned accelerator allocation
// (Lemma 3). Each reports "Not Balanced", "Balanced" and the "Optimal
// Estimation" of the analytic model.

// Fig12Entry is one bar triple for one algorithm.
type Fig12Entry struct {
	Algo        string
	NotBalanced time.Duration
	Balanced    time.Duration
	Optimal     time.Duration
}

// Fig12Result holds one scenario's bars.
type Fig12Result struct {
	Scenario string
	Entries  []Fig12Entry
}

// nodeCapacity estimates a node's computation capacity factor 1/c_j in
// edge entities per second, from its devices' effective rates.
func nodeCapacity(devs []device.Spec, opsPerEdge float64) float64 {
	var rate float64
	for _, spec := range devs {
		d := device.New(spec)
		rate += d.EffectiveRate(1 << 20)
	}
	return rate / opsPerEdge
}

// fig12Algorithms are the two workloads of the figure.
func fig12Algorithms(g *graph.Graph) []template.Algorithm {
	return []template.Algorithm{
		algos.NewSSSPBF(algos.DefaultSources(g.NumVertices())),
		algos.NewPageRank(),
	}
}

// Fig12a: node 0 has 1 GPU + 1 CPU, node 1 has 3 GPUs + 1 CPU. The
// "Not Balanced" run splits edges evenly; the "Balanced" run splits by
// Lemma 2 fractions; the optimal estimation replaces the measured compute
// with the analytic minimum.
func Fig12a(o Options) (*Fig12Result, error) {
	o = o.Denser(8)
	g, err := load(gen.Orkut, o)
	if err != nil {
		return nil, err
	}
	gpu := ScaledV100(o.Scale)
	cpu := device.Xeon20()
	nodeDevs := [][]device.Spec{
		{gpu, cpu},
		{gpu, gpu, gpu, cpu},
	}
	plugs := make([]gxplug.Options, 2)
	for j, devs := range nodeDevs {
		p := gxplug.DefaultOptions()
		p.Devices = devs
		plugs[j] = p
	}
	res := &Fig12Result{Scenario: "fixed hardware, tuned partitioning (Lemma 2)"}
	for _, alg := range fig12Algorithms(g) {
		ops := alg.Hints().OpsPerEdge
		c := []float64{1 / nodeCapacity(nodeDevs[0], ops), 1 / nodeCapacity(nodeDevs[1], ops)}

		even := graph.PartitionBySizes(g, []float64{1, 1})
		fr, err := balance.Fractions(c)
		if err != nil {
			return nil, err
		}
		tuned := graph.PartitionBySizes(g, fr)

		runWith := func(p *graph.Partitioning) (*engine.Result, error) {
			return powergraph.Run(engine.Config{
				Nodes: 2, Graph: g, Alg: alg, Partitioning: p,
				Plug: plugs, MaxIter: fig8MaxIter(alg),
			})
		}
		notBal, err := runWith(even)
		if err != nil {
			return nil, err
		}
		bal, err := runWith(tuned)
		if err != nil {
			return nil, err
		}
		opt, err := fig12Optimal(bal, float64(g.NumEdges()), c)
		if err != nil {
			return nil, err
		}
		res.Entries = append(res.Entries, Fig12Entry{
			Algo: alg.Name(), NotBalanced: notBal.Time, Balanced: bal.Time, Optimal: opt,
		})
	}
	return res, nil
}

// fig12Optimal replaces the balanced run's measured per-node compute with
// the analytic optimum of the estimation model: total time minus measured
// middleware compute plus the Lemma 2 minimum, scaled by the iteration
// count.
func fig12Optimal(bal *engine.Result, D float64, c []float64) (time.Duration, error) {
	_, minPerIter, err := balance.OptimalPartition(D, c)
	if err != nil {
		return 0, err
	}
	var measured time.Duration
	for _, s := range bal.AgentStats {
		if s.PipelineTime > measured {
			measured = s.PipelineTime // slowest node paces each iteration
		}
	}
	analytic := time.Duration(int64(minPerIter) * int64(bal.Iterations))
	opt := bal.Time - measured + analytic
	if opt < analytic {
		opt = analytic
	}
	return opt, nil
}

// Fig12b: partitions fixed at a 1:3 skew; "Not Balanced" gives both nodes
// one GPU; "Balanced" allocates GPUs per Lemma 3.
func Fig12b(o Options) (*Fig12Result, error) {
	o = o.Denser(8)
	g, err := load(gen.Orkut, o)
	if err != nil {
		return nil, err
	}
	part := graph.PartitionBySizes(g, []float64{1, 3})
	d := []float64{
		float64(len(part.Parts[0].Edges)),
		float64(len(part.Parts[1].Edges)),
	}
	gpu := ScaledV100(o.Scale)
	res := &Fig12Result{Scenario: "fixed partitioning, tuned accelerators (Lemma 3)"}
	for _, alg := range fig12Algorithms(g) {
		ops := alg.Hints().OpsPerEdge
		unit := nodeCapacity([]device.Spec{gpu}, ops) // one GPU's capacity factor
		f := 4 * unit                                 // up to 4 GPUs available per node

		inv, minPerIter, err := balance.OptimalCapacities(d, f)
		if err != nil {
			return nil, err
		}
		counts, err := balance.DaemonsForCapacity(inv, unit)
		if err != nil {
			return nil, err
		}
		mkPlug := func(gpus int) gxplug.Options {
			if gpus < 1 {
				gpus = 1
			}
			return GPUPlug(o.Scale, gpus)
		}
		notBal, err := powergraph.Run(engine.Config{
			Nodes: 2, Graph: g, Alg: alg, Partitioning: part,
			Plug:    []gxplug.Options{mkPlug(1), mkPlug(1)},
			MaxIter: fig8MaxIter(alg),
		})
		if err != nil {
			return nil, err
		}
		bal, err := powergraph.Run(engine.Config{
			Nodes: 2, Graph: g, Alg: alg, Partitioning: part,
			Plug:    []gxplug.Options{mkPlug(counts[0]), mkPlug(counts[1])},
			MaxIter: fig8MaxIter(alg),
		})
		if err != nil {
			return nil, err
		}
		var measured time.Duration
		for _, s := range bal.AgentStats {
			if s.PipelineTime > measured {
				measured = s.PipelineTime
			}
		}
		analytic := time.Duration(int64(minPerIter) * int64(bal.Iterations))
		opt := bal.Time - measured + analytic
		if opt < analytic {
			opt = analytic
		}
		res.Entries = append(res.Entries, Fig12Entry{
			Algo: alg.Name(), NotBalanced: notBal.Time, Balanced: bal.Time, Optimal: opt,
		})
	}
	return res, nil
}

// Entry finds one algorithm's bars.
func (r *Fig12Result) Entry(algo string) (Fig12Entry, bool) {
	for _, e := range r.Entries {
		if e.Algo == algo {
			return e, true
		}
	}
	return Fig12Entry{}, false
}

// String renders the bars.
func (r *Fig12Result) String() string {
	var b strings.Builder
	header(&b, "Fig 12: Workload Balancing — "+r.Scenario,
		"Algorithm", "Not Balanced", "Balanced", "Optimal Est.")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "%-16s%-16s%-16s%-16s\n",
			e.Algo, seconds(e.NotBalanced), seconds(e.Balanced), seconds(e.Optimal))
	}
	return b.String()
}

// Fig 13: runtime isolation — the persistent daemon versus re-initializing
// the device on every call ("Raw call"), SSSP-BF for 11 iterations.

// Fig13Result holds the two bars with their init/compute split.
type Fig13Result struct {
	Entries []struct {
		Mode     string
		InitTime time.Duration
		CompTime time.Duration
		Total    time.Duration
	}
}

// fig13Iterations matches the paper's 11-iteration comparison.
const fig13Iterations = 11

// Fig13 runs the comparison.
func Fig13(o Options) (*Fig13Result, error) {
	g, err := load(gen.Orkut, o)
	if err != nil {
		return nil, err
	}
	alg := algos.NewSSSPBF(algos.DefaultSources(g.NumVertices()))
	res := &Fig13Result{}
	var daemonComp time.Duration
	for _, raw := range []bool{false, true} {
		opts := GPUPlug(o.Scale, 1)
		opts.RawCall = raw
		run, err := powergraph.Run(engine.Config{
			Nodes: 1, Graph: g, Alg: alg,
			Plug: []gxplug.Options{opts}, MaxIter: fig13Iterations,
		})
		if err != nil {
			return nil, err
		}
		mode := "Daemon"
		init := run.AgentStats[0].DeviceInit
		comp := run.Time
		if raw {
			mode = "Raw call"
			// Both modes do identical computation; everything the raw-call
			// run pays beyond the daemon run's computation is repeated
			// device initialization.
			comp = daemonComp
			init = run.Time - daemonComp
			if init < 0 {
				init = 0
			}
		} else {
			daemonComp = comp
		}
		res.Entries = append(res.Entries, struct {
			Mode     string
			InitTime time.Duration
			CompTime time.Duration
			Total    time.Duration
		}{mode, init, comp, init + comp})
	}
	return res, nil
}

// Entry finds a mode's bar.
func (r *Fig13Result) Entry(mode string) (init, comp, total time.Duration, ok bool) {
	for _, e := range r.Entries {
		if e.Mode == mode {
			return e.InitTime, e.CompTime, e.Total, true
		}
	}
	return 0, 0, 0, false
}

// String renders the bars.
func (r *Fig13Result) String() string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Fig 13: Runtime Isolation (SSSP-BF, %d iterations)", fig13Iterations),
		"Mode", "GPU Init", "Comp Time", "Total")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "%-16s%-16s%-16s%-16s\n",
			e.Mode, seconds(e.InitTime), seconds(e.CompTime), seconds(e.Total))
	}
	return b.String()
}
