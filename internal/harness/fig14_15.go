package harness

import (
	"fmt"
	"strings"
	"time"

	"gxplug/internal/engine"
	"gxplug/internal/engine/graphx"
	"gxplug/internal/engine/powergraph"
	"gxplug/internal/gen"
	"gxplug/internal/gxplug"
	"gxplug/internal/gxplug/pipeline"
)

// Fig 14: middleware cost ratio — the share of total time spent inside
// the middleware, versus cluster size, for both engines on Orkut.

// Fig14Result holds ratios per (engine, algorithm, nodes).
type Fig14Result struct {
	Entries []struct {
		Engine string
		Algo   string
		Nodes  int
		Ratio  float64
	}
}

// Fig14Nodes are the x-axis points.
func Fig14Nodes() []int { return []int{4, 8, 16, 32} }

// Fig14 measures the ratio grid.
func Fig14(o Options) (*Fig14Result, error) {
	g, err := load(gen.Orkut, o)
	if err != nil {
		return nil, err
	}
	engines := []struct {
		name string
		run  func(engine.Config) (*engine.Result, error)
	}{
		{"PowerGraph", powergraph.Run},
		{"GraphX", graphx.Run},
	}
	res := &Fig14Result{}
	for _, eng := range engines {
		for _, alg := range fig8Algorithms(g) {
			for _, nodes := range Fig14Nodes() {
				run, err := eng.run(engine.Config{
					Nodes: nodes, Graph: g, Alg: alg,
					Plug:    []gxplug.Options{GPUPlug(o.Scale, 1)},
					MaxIter: fig8MaxIter(alg),
				})
				if err != nil {
					return nil, err
				}
				total := run.MiddlewareTime + run.UpperTime
				ratio := 0.0
				if total > 0 {
					ratio = float64(run.MiddlewareTime) / float64(total)
				}
				res.Entries = append(res.Entries, struct {
					Engine string
					Algo   string
					Nodes  int
					Ratio  float64
				}{eng.name, alg.Name(), nodes, ratio})
			}
		}
	}
	return res, nil
}

// Entry finds one ratio.
func (r *Fig14Result) Entry(engineName, algo string, nodes int) (float64, bool) {
	for _, e := range r.Entries {
		if e.Engine == engineName && e.Algo == algo && e.Nodes == nodes {
			return e.Ratio, true
		}
	}
	return 0, false
}

// String renders one block per engine.
func (r *Fig14Result) String() string {
	var b strings.Builder
	for _, eng := range []string{"PowerGraph", "GraphX"} {
		header(&b, fmt.Sprintf("Fig 14: Middleware Cost Ratio @ Orkut (%s)", eng),
			"Algorithm", "4 nodes", "8 nodes", "16 nodes", "32 nodes")
		for _, algo := range []string{"SSSP-BF", "LP", "PageRank"} {
			fmt.Fprintf(&b, "%-16s", algo)
			for _, nodes := range Fig14Nodes() {
				ratio, _ := r.Entry(eng, algo, nodes)
				fmt.Fprintf(&b, "%-16s", fmt.Sprintf("%.0f%%", 100*ratio))
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig 15: block-count sweep — measured per-iteration pipeline time versus
// the number of blocks s, with the Lemma 1 estimate and its s_opt, using
// the paper's measured coefficients.

// Fig15Point is one sweep sample.
type Fig15Point struct {
	Blocks    int
	Measured  time.Duration
	Estimated time.Duration
}

// Fig15Series is one algorithm's sweep.
type Fig15Series struct {
	Algo string
	// Entities is the per-iteration entity count d driving the estimates.
	Entities float64
	// EstOpt is the Lemma 1 optimal block count for the paper's measured
	// coefficients at this d.
	EstOpt int
	Points []Fig15Point
}

// Fig15Result holds all three sweeps.
type Fig15Result struct {
	Series []Fig15Series
}

// Fig15Blocks are the x-axis samples of the figure.
func Fig15Blocks() []int { return []int{1, 5, 10, 20, 30, 50, 500, 1000, 5000} }

// fig15Coefficients maps algorithms to the paper's measured (k1,k2,k3,a).
func fig15Coefficients(algo string) pipeline.Coefficients {
	switch algo {
	case "SSSP-BF":
		return pipeline.PaperSSSP
	case "LP":
		return pipeline.PaperLP
	default:
		return pipeline.PaperPR
	}
}

// Fig15 sweeps the block count on PowerGraph+GPU at Orkut and reports
// per-iteration pipeline time next to the Equation 2 estimate.
func Fig15(o Options) (*Fig15Result, error) {
	g, err := load(gen.Orkut, o)
	if err != nil {
		return nil, err
	}
	res := &Fig15Result{}
	for _, alg := range fig8Algorithms(g) {
		co := fig15Coefficients(alg.Name())
		series := Fig15Series{Algo: alg.Name()}
		for _, s := range Fig15Blocks() {
			opts := GPUPlug(o.Scale, 1)
			opts.OptimalBlockSize = false
			opts.FixedBlockCount = s
			run, err := powergraph.Run(engine.Config{
				Nodes: 1, Graph: g, Alg: alg,
				Plug: []gxplug.Options{opts}, MaxIter: fig8MaxIter(alg),
			})
			if err != nil {
				return nil, err
			}
			st := run.AgentStats[0]
			iters := st.Iterations
			if iters == 0 {
				iters = 1
			}
			perIter := st.PipelineTime / time.Duration(iters)
			d := float64(st.Entities) / float64(iters)
			if series.Entities == 0 {
				series.Entities = d
				series.EstOpt = co.OptimalBlocks(d)
			}
			series.Points = append(series.Points, Fig15Point{
				Blocks:    s,
				Measured:  perIter,
				Estimated: co.Estimate(series.Entities, s),
			})
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// SeriesFor finds one algorithm's sweep.
func (r *Fig15Result) SeriesFor(algo string) (Fig15Series, bool) {
	for _, s := range r.Series {
		if s.Algo == algo {
			return s, true
		}
	}
	return Fig15Series{}, false
}

// String renders the sweeps.
func (r *Fig15Result) String() string {
	var b strings.Builder
	for _, s := range r.Series {
		header(&b, fmt.Sprintf("Fig 15: Block sweep — %s (d=%.0f entities/iter, est s_opt=%d)",
			s.Algo, s.Entities, s.EstOpt),
			"Blocks s", "Measured/iter", "Eq.2 estimate")
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%-16d%-16s%-16s\n", p.Blocks, seconds(p.Measured), seconds(p.Estimated))
		}
		b.WriteString("\n")
	}
	return b.String()
}
