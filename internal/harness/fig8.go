package harness

import (
	"fmt"
	"strings"
	"time"

	"gxplug/internal/algos"
	"gxplug/internal/engine"
	"gxplug/internal/engine/graphx"
	"gxplug/internal/engine/powergraph"
	"gxplug/internal/gen"
	"gxplug/internal/graph"
	"gxplug/internal/gxplug"
	"gxplug/internal/gxplug/template"
)

// Fig8 compares computation time of {GraphX, PowerGraph} × {native, +CPU,
// +GPU} on {LP, SSSP, PR} over the four datasets of Figure 8, on the
// paper's 6-node cluster.

// Fig8System names one of the six system configurations.
type Fig8System string

// The six bars of each Fig 8 group, paper order.
const (
	SysGraphX        Fig8System = "GraphX"
	SysGraphXCPU     Fig8System = "GraphX+CPU"
	SysGraphXGPU     Fig8System = "GraphX+GPU"
	SysPowerGraph    Fig8System = "PowerGraph"
	SysPowerGraphCPU Fig8System = "PowerGraph+CPU"
	SysPowerGraphGPU Fig8System = "PowerGraph+GPU"
)

// Fig8Systems lists all configurations in paper order.
func Fig8Systems() []Fig8System {
	return []Fig8System{SysGraphX, SysGraphXCPU, SysGraphXGPU,
		SysPowerGraph, SysPowerGraphCPU, SysPowerGraphGPU}
}

// Fig8Datasets lists the four subfigures' datasets.
func Fig8Datasets() []gen.Dataset {
	return []gen.Dataset{gen.Twitter, gen.Orkut, gen.LiveJournal, gen.WikiTopcats}
}

// Fig8Cell is one bar: computation time of one system on one algorithm
// and dataset.
type Fig8Cell struct {
	Dataset gen.Dataset
	Algo    string
	System  Fig8System
	Time    time.Duration
	Err     string // non-empty when the configuration failed (e.g. OOM)
}

// Fig8Result holds the full grid.
type Fig8Result struct {
	Cells []Fig8Cell
}

// fig8Nodes is the paper's physical cluster size.
const fig8Nodes = 6

// prIterCap bounds PageRank for the timing figures: the paper reports
// computation time of a fixed PR workload, not convergence to 1e-9.
const prIterCap = 20

// fig8Algorithms builds the three workloads for a graph.
func fig8Algorithms(g *graph.Graph) []template.Algorithm {
	return []template.Algorithm{
		algos.NewLP(),
		algos.NewSSSPBF(algos.DefaultSources(g.NumVertices())),
		algos.NewPageRank(),
	}
}

func fig8MaxIter(a template.Algorithm) int {
	if a.Name() == "PageRank" {
		return prIterCap
	}
	return 0
}

// runSystem executes one Fig 8 configuration.
func runSystem(sys Fig8System, g *graph.Graph, alg template.Algorithm, nodes int, o Options) (time.Duration, error) {
	var run func(engine.Config) (*engine.Result, error)
	var plug []gxplug.Options
	switch sys {
	case SysGraphX:
		run = graphx.Run
	case SysGraphXCPU:
		run, plug = graphx.Run, []gxplug.Options{CPUPlug()}
	case SysGraphXGPU:
		run, plug = graphx.Run, []gxplug.Options{GPUPlug(o.Scale, 2)}
	case SysPowerGraph:
		run = powergraph.Run
	case SysPowerGraphCPU:
		run, plug = powergraph.Run, []gxplug.Options{CPUPlug()}
	case SysPowerGraphGPU:
		run, plug = powergraph.Run, []gxplug.Options{GPUPlug(o.Scale, 2)}
	default:
		return 0, fmt.Errorf("harness: unknown system %q", sys)
	}
	res, err := run(engine.Config{
		Nodes: nodes, Graph: g, Alg: alg, Plug: plug, MaxIter: fig8MaxIter(alg),
	})
	if err != nil {
		return 0, err
	}
	return res.Time, nil
}

// Fig8 runs the full grid. Datasets may be restricted to keep bench runs
// bounded; nil means all four.
func Fig8(o Options, datasets []gen.Dataset) (*Fig8Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if datasets == nil {
		datasets = Fig8Datasets()
	}
	res := &Fig8Result{}
	for _, d := range datasets {
		g, err := load(d, o)
		if err != nil {
			return nil, err
		}
		for _, alg := range fig8Algorithms(g) {
			for _, sys := range Fig8Systems() {
				cell := Fig8Cell{Dataset: d, Algo: alg.Name(), System: sys}
				t, err := runSystem(sys, g, alg, fig8Nodes, o)
				if err != nil {
					cell.Err = err.Error()
				} else {
					cell.Time = t
				}
				res.Cells = append(res.Cells, cell)
			}
		}
	}
	return res, nil
}

// Cell finds one grid entry.
func (r *Fig8Result) Cell(d gen.Dataset, algo string, sys Fig8System) (Fig8Cell, bool) {
	for _, c := range r.Cells {
		if c.Dataset == d && c.Algo == algo && c.System == sys {
			return c, true
		}
	}
	return Fig8Cell{}, false
}

// Speedup returns the acceleration ratio of sys over the matching native
// engine for one dataset/algorithm.
func (r *Fig8Result) Speedup(d gen.Dataset, algo string, sys Fig8System) float64 {
	base := SysGraphX
	if strings.HasPrefix(string(sys), "PowerGraph") {
		base = SysPowerGraph
	}
	b, ok1 := r.Cell(d, algo, base)
	c, ok2 := r.Cell(d, algo, sys)
	if !ok1 || !ok2 || c.Time == 0 {
		return 0
	}
	return b.Time.Seconds() / c.Time.Seconds()
}

// String renders one block per dataset, matching the Fig 8 subfigures.
func (r *Fig8Result) String() string {
	var b strings.Builder
	// Render the datasets actually present, in first-appearance order, so
	// runs restricted to non-canonical datasets (gxbench -dataset) still
	// print.
	var datasets []gen.Dataset
	for _, c := range r.Cells {
		seen := false
		for _, d := range datasets {
			seen = seen || d == c.Dataset
		}
		if !seen {
			datasets = append(datasets, c.Dataset)
		}
	}
	for _, d := range datasets {
		header(&b, fmt.Sprintf("Fig 8: CompTime(s) @ %s", d),
			"System", "LP", "SSSP-BF", "PageRank")
		for _, sys := range Fig8Systems() {
			fmt.Fprintf(&b, "%-16s", sys)
			for _, algo := range []string{"LP", "SSSP-BF", "PageRank"} {
				if c, ok := r.Cell(d, algo, sys); ok {
					if c.Err != "" {
						fmt.Fprintf(&b, "%-16s", "ERR")
					} else {
						fmt.Fprintf(&b, "%-16s", seconds(c.Time))
					}
				}
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}
