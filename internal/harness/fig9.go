package harness

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"gxplug/internal/algos"
	"gxplug/internal/baseline/gunrock"
	"gxplug/internal/baseline/lux"
	"gxplug/internal/device"
	"gxplug/internal/engine"
	"gxplug/internal/engine/powergraph"
	"gxplug/internal/gen"
	"gxplug/internal/graph"
	"gxplug/internal/gxplug"
	"gxplug/internal/gxplug/template"
)

// Figure 9: scalability. (a) PageRank on Orkut vs GPU count against Lux
// and Gunrock; (b) the same on Twitter and UK-2007 at 4/12 GPUs with the
// OOM/No-Config failures; (c) per-algorithm GPU scaling of
// PowerGraph+GX-Plug; (d) mixing & matching CPU and GPU daemons.

// Fig9Entry is one measured point or a failure marker.
type Fig9Entry struct {
	System string
	GPUs   int
	Time   time.Duration
	// Status is "" for a measurement, or "No Config" / "O.O.M" exactly as
	// the figure annotates missing bars.
	Status string
}

// Fig9aResult is the Orkut scalability sweep.
type Fig9aResult struct {
	Entries []Fig9Entry
}

// fig9GPUCounts are the x-axis points of Fig 9a/9c.
func fig9GPUCounts() []int { return []int{1, 2, 4, 12} }

// fig9PRIters fixes the PageRank workload length for comparability.
const fig9PRIters = 10

// runGXPlugGPUs runs PowerGraph+GX-Plug with g GPUs spread two per node.
func runGXPlugGPUs(g *graph.Graph, alg template.Algorithm, gpus int, maxIter int, o Options) (time.Duration, error) {
	nodes, perNode := NodesForGPUs(gpus)
	res, err := powergraph.Run(engine.Config{
		Nodes: nodes, Graph: g, Alg: alg,
		Plug:    []gxplug.Options{GPUPlug(o.Scale, perNode)},
		MaxIter: maxIter,
	})
	if err != nil {
		return 0, err
	}
	return res.Time, nil
}

// fig9Point measures one (system, gpus) cell with the paper's failure
// annotations.
func fig9Point(system string, g *graph.Graph, alg template.Algorithm, gpus, maxIter int, o Options) Fig9Entry {
	e := Fig9Entry{System: system, GPUs: gpus}
	switch system {
	case "GX-Plug+PowerGraph":
		t, err := runGXPlugGPUs(g, alg, gpus, maxIter, o)
		if err != nil {
			e.Status = statusOf(err)
		} else {
			e.Time = t
		}
	case "Lux":
		res, err := lux.Run(lux.Config{
			Graph: g, Alg: alg, GPUs: gpus, Device: ScaledV100(o.Scale), MaxIter: maxIter,
		})
		if err != nil {
			e.Status = statusOf(err)
		} else {
			e.Time = res.Time
		}
	case "Gunrock":
		// The figure annotates memory exhaustion as O.O.M even at GPU
		// counts Gunrock cannot configure: a graph that does not fit one
		// GPU is the dominant failure. Probe single-GPU feasibility first.
		if g.MemoryFootprint(alg.AttrWidth()) > ScaledV100(o.Scale).MemBytes {
			e.Status = "O.O.M"
			return e
		}
		res, err := gunrock.Run(gunrock.Config{
			Graph: g, Alg: alg, GPUs: gpus, Device: ScaledV100(o.Scale), MaxIter: maxIter,
		})
		if err != nil {
			e.Status = statusOf(err)
		} else {
			e.Time = res.Time
		}
	}
	return e
}

func statusOf(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, gunrock.ErrNoMultiGPU):
		return "No Config"
	case errors.Is(err, device.ErrOutOfMemory):
		return "O.O.M"
	default:
		return "ERR: " + err.Error()
	}
}

// Fig9a sweeps GPU counts on Orkut PageRank for the three systems.
func Fig9a(o Options) (*Fig9aResult, error) {
	o = o.Denser(8)
	g, err := load(gen.Orkut, o)
	if err != nil {
		return nil, err
	}
	pr := algos.NewPageRank()
	res := &Fig9aResult{}
	for _, gpus := range fig9GPUCounts() {
		for _, sys := range []string{"GX-Plug+PowerGraph", "Lux", "Gunrock"} {
			res.Entries = append(res.Entries, fig9Point(sys, g, pr, gpus, fig9PRIters, o))
		}
	}
	return res, nil
}

// Entry finds a point.
func (r *Fig9aResult) Entry(system string, gpus int) (Fig9Entry, bool) {
	for _, e := range r.Entries {
		if e.System == system && e.GPUs == gpus {
			return e, true
		}
	}
	return Fig9Entry{}, false
}

// String renders the sweep.
func (r *Fig9aResult) String() string {
	var b strings.Builder
	header(&b, "Fig 9a: PageRank @ Orkut, time vs #GPUs",
		"System", "1 GPU", "2 GPUs", "4 GPUs", "12 GPUs")
	for _, sys := range []string{"GX-Plug+PowerGraph", "Lux", "Gunrock"} {
		fmt.Fprintf(&b, "%-16s", sys)
		for _, gpus := range fig9GPUCounts() {
			e, _ := r.Entry(sys, gpus)
			if e.Status != "" {
				fmt.Fprintf(&b, "%-16s", e.Status)
			} else {
				fmt.Fprintf(&b, "%-16s", seconds(e.Time))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig9bResult holds the large-graph cells.
type Fig9bResult struct {
	Entries []struct {
		Dataset gen.Dataset
		Fig9Entry
	}
}

// Fig9b runs Twitter and UK-2007 at 4 and 12 GPUs.
func Fig9b(o Options) (*Fig9bResult, error) {
	res := &Fig9bResult{}
	for _, d := range []gen.Dataset{gen.Twitter, gen.UK2007} {
		g, err := load(d, o)
		if err != nil {
			return nil, err
		}
		pr := algos.NewPageRank()
		for _, gpus := range []int{4, 12} {
			for _, sys := range []string{"GX-Plug+PowerGraph", "Lux", "Gunrock"} {
				e := fig9Point(sys, g, pr, gpus, fig9PRIters, o)
				res.Entries = append(res.Entries, struct {
					Dataset gen.Dataset
					Fig9Entry
				}{d, e})
			}
		}
	}
	return res, nil
}

// Entry finds a cell.
func (r *Fig9bResult) Entry(d gen.Dataset, system string, gpus int) (Fig9Entry, bool) {
	for _, e := range r.Entries {
		if e.Dataset == d && e.System == system && e.GPUs == gpus {
			return e.Fig9Entry, true
		}
	}
	return Fig9Entry{}, false
}

// String renders the cells.
func (r *Fig9bResult) String() string {
	var b strings.Builder
	header(&b, "Fig 9b: PageRank @ Twitter & UK-2007",
		"System", "TW@4", "TW@12", "UK@4", "UK@12")
	for _, sys := range []string{"GX-Plug+PowerGraph", "Lux", "Gunrock"} {
		fmt.Fprintf(&b, "%-16s", sys)
		for _, cell := range [][2]interface{}{
			{gen.Twitter, 4}, {gen.Twitter, 12}, {gen.UK2007, 4}, {gen.UK2007, 12},
		} {
			e, _ := r.Entry(cell[0].(gen.Dataset), sys, cell[1].(int))
			if e.Status != "" {
				fmt.Fprintf(&b, "%-16s", e.Status)
			} else {
				fmt.Fprintf(&b, "%-16s", seconds(e.Time))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig9cResult is the per-algorithm GPU scaling of GX-Plug+PowerGraph.
type Fig9cResult struct {
	Entries []struct {
		Algo string
		Fig9Entry
	}
}

// Fig9c sweeps GPU counts for LP, SSSP-BF and PageRank on Orkut.
func Fig9c(o Options) (*Fig9cResult, error) {
	o = o.Denser(8)
	g, err := load(gen.Orkut, o)
	if err != nil {
		return nil, err
	}
	res := &Fig9cResult{}
	for _, alg := range fig8Algorithms(g) {
		for _, gpus := range fig9GPUCounts() {
			t, err := runGXPlugGPUs(g, alg, gpus, fig8MaxIter(alg), o)
			e := Fig9Entry{System: "GX-Plug+PowerGraph", GPUs: gpus}
			if err != nil {
				e.Status = statusOf(err)
			} else {
				e.Time = t
			}
			res.Entries = append(res.Entries, struct {
				Algo string
				Fig9Entry
			}{alg.Name(), e})
		}
	}
	return res, nil
}

// Entry finds a point.
func (r *Fig9cResult) Entry(algo string, gpus int) (Fig9Entry, bool) {
	for _, e := range r.Entries {
		if e.Algo == algo && e.GPUs == gpus {
			return e.Fig9Entry, true
		}
	}
	return Fig9Entry{}, false
}

// String renders the sweep.
func (r *Fig9cResult) String() string {
	var b strings.Builder
	header(&b, "Fig 9c: GX-Plug+PowerGraph @ Orkut, time vs #GPUs",
		"Algorithm", "1 GPU", "2 GPUs", "4 GPUs", "12 GPUs")
	for _, algo := range []string{"LP", "SSSP-BF", "PageRank"} {
		fmt.Fprintf(&b, "%-16s", algo)
		for _, gpus := range fig9GPUCounts() {
			e, _ := r.Entry(algo, gpus)
			if e.Status != "" {
				fmt.Fprintf(&b, "%-16s", e.Status)
			} else {
				fmt.Fprintf(&b, "%-16s", seconds(e.Time))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig9dResult is the daemon mix & match experiment.
type Fig9dResult struct {
	Entries []struct {
		Algo  string
		Combo string
		Time  time.Duration
	}
}

// Fig9dCombos lists the paper's 4-daemon combinations in increasing
// compute power: 2 GPUs + 2 CPUs, 3 GPUs + one double-width CPU, 4 GPUs.
func Fig9dCombos() []string { return []string{"G:G:C:C", "G:G:G:2C", "G:G:G:G"} }

func fig9dDevices(combo string, o Options) ([]device.Spec, error) {
	gpu := ScaledV100(o.Scale)
	cpu := device.Xeon20()
	double := device.Xeon20()
	double.Name = "Xeon-2x"
	double.Threads *= 2
	switch combo {
	case "G:G:C:C":
		return []device.Spec{gpu, gpu, cpu, cpu}, nil
	case "G:G:G:2C":
		return []device.Spec{gpu, gpu, gpu, double}, nil
	case "G:G:G:G":
		return []device.Spec{gpu, gpu, gpu, gpu}, nil
	default:
		return nil, fmt.Errorf("harness: unknown combo %q", combo)
	}
}

// Fig9d runs each combination as four daemons on one node.
func Fig9d(o Options) (*Fig9dResult, error) {
	o = o.Denser(8)
	g, err := load(gen.Orkut, o)
	if err != nil {
		return nil, err
	}
	res := &Fig9dResult{}
	for _, alg := range fig8Algorithms(g) {
		for _, combo := range Fig9dCombos() {
			devs, err := fig9dDevices(combo, o)
			if err != nil {
				return nil, err
			}
			opts := gxplug.DefaultOptions()
			opts.Devices = devs
			run, err := powergraph.Run(engine.Config{
				Nodes: 1, Graph: g, Alg: alg,
				Plug: []gxplug.Options{opts}, MaxIter: fig8MaxIter(alg),
			})
			if err != nil {
				return nil, err
			}
			res.Entries = append(res.Entries, struct {
				Algo  string
				Combo string
				Time  time.Duration
			}{alg.Name(), combo, run.Time})
		}
	}
	return res, nil
}

// Entry finds a point.
func (r *Fig9dResult) Entry(algo, combo string) (time.Duration, bool) {
	for _, e := range r.Entries {
		if e.Algo == algo && e.Combo == combo {
			return e.Time, true
		}
	}
	return 0, false
}

// String renders the grid.
func (r *Fig9dResult) String() string {
	var b strings.Builder
	header(&b, "Fig 9d: Mix & Match (4 daemons) @ Orkut",
		"Algorithm", "G:G:C:C", "G:G:G:2C", "G:G:G:G")
	for _, algo := range []string{"LP", "SSSP-BF", "PageRank"} {
		fmt.Fprintf(&b, "%-16s", algo)
		for _, combo := range Fig9dCombos() {
			t, _ := r.Entry(algo, combo)
			fmt.Fprintf(&b, "%-16s", seconds(t))
		}
		b.WriteString("\n")
	}
	return b.String()
}
