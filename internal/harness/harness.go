// Package harness regenerates every table and figure of the paper's
// evaluation (§V). Each experiment is a function from Options to a result
// struct whose String method prints the same rows/series the paper
// reports. Absolute numbers are not comparable to the paper — datasets
// are scaled stand-ins and the clock is virtual — but the shapes (who
// wins, by what factor, where crossovers and knees fall) are the
// reproduction targets, recorded in EXPERIMENTS.md.
package harness

import (
	"fmt"
	"strings"
	"time"

	"gxplug/internal/device"
	"gxplug/internal/gen"
	"gxplug/internal/graph"
	"gxplug/internal/gxplug"
)

// Options configure an experiment run.
type Options struct {
	// Scale divides the Table I dataset sizes (1000 reproduces every
	// figure in seconds-to-minutes; tests use coarser scales).
	Scale int64
	// Seed drives every generator.
	Seed int64
}

// Default is the scale used by the benchmark harness.
func Default() Options { return Options{Scale: 1000, Seed: 42} }

// Denser returns options at a finer (heavier) scale. The GPU-scaling and
// balancing experiments (Figs 9a/9c/9d, 12) only show their shape when
// per-iteration compute dominates fixed synchronization costs, as it does
// at the paper's full data sizes; they run at Scale/div (floored at 25,
// i.e. 1/25 of the real datasets). Device memory scaling follows the
// chosen scale automatically.
func (o Options) Denser(div int64) Options {
	s := o.Scale / div
	if s < 25 {
		s = 25
	}
	return Options{Scale: s, Seed: o.Seed}
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.Scale < 1 {
		return fmt.Errorf("harness: scale %d", o.Scale)
	}
	return nil
}

// ScaledV100 returns the V100 model with memory scaled down with the
// datasets, so the paper's OOM boundaries (Fig 9b) reproduce at any
// scale. It is the device catalog's model; kept here as a harness alias.
func ScaledV100(scale int64) device.Spec { return device.V100Scaled(scale) }

// GPUPlug returns default middleware options with n scaled GPUs — the
// shared middleware profile, re-exported for the experiment runners.
func GPUPlug(scale int64, n int) gxplug.Options { return gxplug.GPUOptions(scale, n) }

// CPUPlug returns default middleware options with one CPU accelerator —
// the shared middleware profile, re-exported for the experiment runners.
func CPUPlug() gxplug.Options { return gxplug.CPUOptions() }

// NodesForGPUs maps a GPU count onto cluster nodes with two GPUs per node,
// the paper's testbed shape (6 physical nodes × 2 V100s).
func NodesForGPUs(gpus int) (nodes, gpusPerNode int) {
	if gpus <= 2 {
		return 1, gpus
	}
	nodes = (gpus + 1) / 2
	return nodes, 2
}

// load resolves a dataset stand-in through the process-wide dataset
// cache: every figure generator routes its loads here, so a full
// `gxbench -exp all` sweep generates each distinct (dataset, scale,
// seed) once and later experiments reuse the immutable instance.
func load(d gen.Dataset, o Options) (*graph.Graph, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return gen.LoadShared(d, o.Scale, o.Seed)
}

// seconds renders durations the way the figures label their axes.
func seconds(d time.Duration) string {
	return fmt.Sprintf("%.4f", d.Seconds())
}

// header renders a fixed-width table header.
func header(b *strings.Builder, title string, cols ...string) {
	fmt.Fprintf(b, "%s\n", title)
	for _, c := range cols {
		fmt.Fprintf(b, "%-16s", c)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 16*len(cols)))
	b.WriteString("\n")
}
