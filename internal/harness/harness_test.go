package harness

import (
	"strings"
	"testing"

	"gxplug/internal/gen"
)

// testOpts keeps datasets tiny so the whole shape suite runs in seconds.
func testOpts() Options { return Options{Scale: 16000, Seed: 42} }

func TestOptionsValidate(t *testing.T) {
	if err := (Options{Scale: 0}).Validate(); err == nil {
		t.Fatal("scale 0 accepted")
	}
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScaledV100(t *testing.T) {
	s := ScaledV100(1000)
	if s.MemBytes != (16<<30)/1000 {
		t.Fatalf("mem %d", s.MemBytes)
	}
	if tiny := ScaledV100(1 << 40); tiny.MemBytes < 1<<16 {
		t.Fatal("memory floor not applied")
	}
}

func TestNodesForGPUs(t *testing.T) {
	cases := map[int][2]int{1: {1, 1}, 2: {1, 2}, 4: {2, 2}, 12: {6, 2}}
	for gpus, want := range cases {
		n, per := NodesForGPUs(gpus)
		if n != want[0] || per != want[1] {
			t.Fatalf("NodesForGPUs(%d) = (%d,%d), want %v", gpus, n, per, want)
		}
	}
}

func TestTableDatasets(t *testing.T) {
	res, err := TableDatasets(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(res.Rows))
	}
	out := res.String()
	for _, want := range []string{"orkut", "twitter", "uk-2007-02", "Road"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

// Fig 8 shape: on every dataset and algorithm, GPU beats CPU beats
// native for both engines, and native PowerGraph beats native GraphX.
func TestFig8Shape(t *testing.T) {
	res, err := Fig8(Options{Scale: 2000, Seed: 42}, []gen.Dataset{gen.Orkut})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"LP", "SSSP-BF", "PageRank"} {
		gx, _ := res.Cell(gen.Orkut, algo, SysGraphX)
		gxc, _ := res.Cell(gen.Orkut, algo, SysGraphXCPU)
		gxg, _ := res.Cell(gen.Orkut, algo, SysGraphXGPU)
		pg, _ := res.Cell(gen.Orkut, algo, SysPowerGraph)
		pgg, _ := res.Cell(gen.Orkut, algo, SysPowerGraphGPU)
		if !(gxg.Time < gxc.Time && gxc.Time < gx.Time) {
			t.Fatalf("%s: GraphX ordering wrong: GPU=%v CPU=%v native=%v",
				algo, gxg.Time, gxc.Time, gx.Time)
		}
		if pgg.Time >= pg.Time {
			t.Fatalf("%s: PowerGraph+GPU (%v) not faster than native (%v)", algo, pgg.Time, pg.Time)
		}
		if pg.Time >= gx.Time {
			t.Fatalf("%s: native PowerGraph (%v) not faster than native GraphX (%v)",
				algo, pg.Time, gx.Time)
		}
		if sp := res.Speedup(gen.Orkut, algo, SysGraphXGPU); sp < 2 {
			t.Fatalf("%s: GraphX+GPU speedup %.1fx below 2x", algo, sp)
		}
	}
	if !strings.Contains(res.String(), "GraphX+GPU") {
		t.Fatal("output missing systems")
	}
}

// Fig 9a shape: Gunrock best at 1 GPU and "No Config" beyond; GX-Plug
// beats Lux from 4 GPUs; GX-Plug time decreases with GPUs.
func TestFig9aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation sweep; run without -short for the full shape check")
	}
	res, err := Fig9a(Options{Scale: 1000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	gx1, _ := res.Entry("GX-Plug+PowerGraph", 1)
	gx4, _ := res.Entry("GX-Plug+PowerGraph", 4)
	gx12, _ := res.Entry("GX-Plug+PowerGraph", 12)
	lux4, _ := res.Entry("Lux", 4)
	gun1, _ := res.Entry("Gunrock", 1)
	gun4, _ := res.Entry("Gunrock", 4)
	if gun1.Status != "" || gun1.Time >= gx1.Time {
		t.Fatalf("Gunrock not best at 1 GPU: gun=%v gx=%v", gun1, gx1)
	}
	if gun4.Status != "No Config" {
		t.Fatalf("Gunrock @4 GPUs status %q, want No Config", gun4.Status)
	}
	if gx4.Time >= lux4.Time {
		t.Fatalf("GX-Plug (%v) not ahead of Lux (%v) at 4 GPUs", gx4.Time, lux4.Time)
	}
	if !(gx12.Time < gx1.Time) {
		t.Fatalf("GX-Plug not scaling: 1 GPU %v, 12 GPUs %v", gx1.Time, gx12.Time)
	}
}

// Fig 9b shape: Gunrock OOMs on both graphs; UK at 4 GPUs fails for
// everyone; UK at 12 works for the distributed systems.
func TestFig9bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation sweep; run without -short for the full shape check")
	}
	res, err := Fig9b(Options{Scale: 4000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	gunTW, _ := res.Entry(gen.Twitter, "Gunrock", 4)
	if gunTW.Status != "O.O.M" {
		t.Fatalf("Gunrock TW@4 status %q, want O.O.M", gunTW.Status)
	}
	gunUK, _ := res.Entry(gen.UK2007, "Gunrock", 12)
	if gunUK.Status != "O.O.M" {
		t.Fatalf("Gunrock UK@12 status %q, want O.O.M", gunUK.Status)
	}
	luxUK4, _ := res.Entry(gen.UK2007, "Lux", 4)
	gxUK4, _ := res.Entry(gen.UK2007, "GX-Plug+PowerGraph", 4)
	if luxUK4.Status != "O.O.M" || gxUK4.Status != "O.O.M" {
		t.Fatalf("UK@4 should OOM for all: lux=%q gx=%q", luxUK4.Status, gxUK4.Status)
	}
	gxUK12, _ := res.Entry(gen.UK2007, "GX-Plug+PowerGraph", 12)
	luxUK12, _ := res.Entry(gen.UK2007, "Lux", 12)
	if gxUK12.Status != "" || luxUK12.Status != "" {
		t.Fatalf("UK@12 should run: gx=%q lux=%q", gxUK12.Status, luxUK12.Status)
	}
	gxTW4, _ := res.Entry(gen.Twitter, "GX-Plug+PowerGraph", 4)
	luxTW4, _ := res.Entry(gen.Twitter, "Lux", 4)
	if gxTW4.Status != "" || luxTW4.Status != "" {
		t.Fatalf("TW@4 should run for distributed systems: gx=%q lux=%q", gxTW4.Status, luxTW4.Status)
	}
	// "PowerGraph+GX-plug is about 40% faster than Lux when processing
	// Twitter with 4 GPUs": require a clear GX-Plug lead.
	if gxTW4.Time >= luxTW4.Time {
		t.Fatalf("GX-Plug TW@4 (%v) not ahead of Lux (%v)", gxTW4.Time, luxTW4.Time)
	}
}

// Fig 9c shape: every algorithm speeds up from 1 to 12 GPUs.
func TestFig9cShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation sweep; run without -short for the full shape check")
	}
	res, err := Fig9c(Options{Scale: 1000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"LP", "SSSP-BF", "PageRank"} {
		e1, ok1 := res.Entry(algo, 1)
		e12, ok12 := res.Entry(algo, 12)
		if !ok1 || !ok12 || e1.Status != "" || e12.Status != "" {
			t.Fatalf("%s: missing entries", algo)
		}
		if e12.Time >= e1.Time {
			t.Fatalf("%s: no speedup 1→12 GPUs: %v → %v", algo, e1.Time, e12.Time)
		}
	}
}

// Fig 9d shape: more compute power means less time, combo by combo.
func TestFig9dShape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation sweep; run without -short for the full shape check")
	}
	res, err := Fig9d(Options{Scale: 1000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"LP", "SSSP-BF", "PageRank"} {
		a, _ := res.Entry(algo, "G:G:C:C")
		c, _ := res.Entry(algo, "G:G:G:G")
		if c > a {
			t.Fatalf("%s: 4 GPUs (%v) slower than 2G+2C (%v)", algo, c, a)
		}
	}
}

// Fig 10 shape: Pipeline* <= Pipeline < WithoutPipeline.
func TestFig10Shape(t *testing.T) {
	res, err := Fig10(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"LP", "SSSP-BF", "PageRank"} {
		opt, _ := res.Entry(algo, "Pipeline*")
		fixed, _ := res.Entry(algo, "Pipeline")
		without, _ := res.Entry(algo, "WithoutPipeline")
		if opt > fixed {
			t.Fatalf("%s: Pipeline* (%v) worse than fixed Pipeline (%v)", algo, opt, fixed)
		}
		if fixed >= without {
			t.Fatalf("%s: Pipeline (%v) not faster than WithoutPipeline (%v)", algo, fixed, without)
		}
	}
}

// Cache-capacity sweep shape: the hit rate is monotonically
// non-decreasing in capacity, eviction pressure (evictions, dirty
// spills) falls as capacity grows, and the unbounded point spills
// nothing.
func TestCacheCapSweepShape(t *testing.T) {
	res, err := CacheCapSweep(Options{Scale: 4000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Entries), len(CacheCapFractions()); got != want {
		t.Fatalf("%d sweep points, want %d", got, want)
	}
	for i := 1; i < len(res.Entries); i++ {
		prev, cur := res.Entries[i-1], res.Entries[i]
		if cur.HitRate < prev.HitRate {
			t.Errorf("hit rate fell growing capacity %s -> %s: %.3f -> %.3f\n%s",
				prev.Fraction, cur.Fraction, prev.HitRate, cur.HitRate, res)
		}
		if cur.Evictions > prev.Evictions {
			t.Errorf("evictions rose growing capacity %s -> %s: %d -> %d\n%s",
				prev.Fraction, cur.Fraction, prev.Evictions, cur.Evictions, res)
		}
	}
	smallest, _ := res.Entry("1/8")
	if smallest.Evictions == 0 || smallest.DirtySpills == 0 {
		t.Fatalf("1/8 capacity drove no eviction pressure:\n%s", res)
	}
	full, _ := res.Entry("1")
	if full.Capacity != 0 || full.Evictions != 0 || full.DirtySpills != 0 {
		t.Fatalf("unbounded point reports capacity pressure: %+v", full)
	}
}

// Fig 11a shape: caching helps both engines, and helps GraphX more (its
// boundary is JNI-expensive).
func TestFig11aShape(t *testing.T) {
	res, err := Fig11a(Options{Scale: 4000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	gain := func(engineName string, d gen.Dataset) float64 {
		off, _ := res.Entry(engineName, d, false)
		on, _ := res.Entry(engineName, d, true)
		if on == 0 {
			t.Fatalf("%s/%s: zero time", engineName, d)
		}
		return off.Seconds() / on.Seconds()
	}
	gxGain := gain("GraphX", gen.Orkut)
	pgGain := gain("PowerGraph", gen.Orkut)
	if gxGain <= 1.05 {
		t.Fatalf("caching gain on GraphX only %.2fx", gxGain)
	}
	if pgGain <= 1.0 {
		t.Fatalf("caching hurt PowerGraph: %.2fx", pgGain)
	}
	if gxGain <= pgGain {
		t.Fatalf("caching gain not larger on GraphX: gx=%.2fx pg=%.2fx", gxGain, pgGain)
	}
}

// Fig 11b shape: clustered real stand-ins skip most synchronizations;
// the uniform synthetic graph skips few.
func TestFig11bShape(t *testing.T) {
	res, err := Fig11b(Options{Scale: 4000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	frac := func(d gen.Dataset) float64 {
		sk, tot, ok := res.Entry(d)
		if !ok || tot == 0 {
			t.Fatalf("%s: missing entry", d)
		}
		return float64(sk) / float64(tot)
	}
	if f := frac(gen.WRN); f < 0.5 {
		t.Fatalf("WRN skip fraction %.2f, want >0.5", f)
	}
	if f := frac(gen.LiveJournal); f < 0.3 {
		t.Fatalf("LiveJournal skip fraction %.2f, want >0.3", f)
	}
	if fSyn, fWRN := frac(gen.Syn4m), frac(gen.WRN); fSyn >= fWRN {
		t.Fatalf("synthetic graph skips as much as the road network: %.2f vs %.2f", fSyn, fWRN)
	}
}

// Fig 12 shape: balanced beats not-balanced; optimal estimation is a
// lower bound near the balanced measurement.
func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation sweep; run without -short for the full shape check")
	}
	for name, fn := range map[string]func(Options) (*Fig12Result, error){
		"a": Fig12a, "b": Fig12b,
	} {
		res, err := fn(Options{Scale: 1000, Seed: 42})
		if err != nil {
			t.Fatalf("12%s: %v", name, err)
		}
		for _, e := range res.Entries {
			if e.Balanced >= e.NotBalanced {
				t.Fatalf("12%s/%s: balanced (%v) not faster than unbalanced (%v)",
					name, e.Algo, e.Balanced, e.NotBalanced)
			}
			if e.Optimal > e.Balanced {
				t.Fatalf("12%s/%s: optimal estimate (%v) above balanced measurement (%v)",
					name, e.Algo, e.Optimal, e.Balanced)
			}
			if e.Optimal < e.Balanced/4 {
				t.Fatalf("12%s/%s: optimal estimate (%v) implausibly far below balanced (%v)",
					name, e.Algo, e.Optimal, e.Balanced)
			}
		}
	}
}

// Fig 13 shape: raw calls cost far more than the persistent daemon.
func TestFig13Shape(t *testing.T) {
	res, err := Fig13(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	_, dComp, dTotal, ok := res.Entry("Daemon")
	if !ok {
		t.Fatal("missing daemon entry")
	}
	_, _, rTotal, ok := res.Entry("Raw call")
	if !ok {
		t.Fatal("missing raw-call entry")
	}
	if rTotal <= 2*dTotal {
		t.Fatalf("raw call (%v) not clearly above daemon (%v)", rTotal, dTotal)
	}
	if dComp <= 0 {
		t.Fatal("daemon comp time missing")
	}
}

// Fig 14 shape: the middleware ratio falls with the node count for both
// engines, and stays a minority share at 32 nodes.
func TestFig14Shape(t *testing.T) {
	res, err := Fig14(Options{Scale: 4000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []string{"PowerGraph", "GraphX"} {
		for _, algo := range []string{"SSSP-BF", "PageRank"} {
			r4, _ := res.Entry(eng, algo, 4)
			r32, _ := res.Entry(eng, algo, 32)
			if r32 >= r4 {
				t.Fatalf("%s/%s: ratio did not fall: %.2f → %.2f", eng, algo, r4, r32)
			}
			if r32 > 0.6 {
				t.Fatalf("%s/%s: ratio %.2f at 32 nodes; middleware should be a minority", eng, algo, r32)
			}
		}
	}
}

// Fig 15 shape: the measured sweep is U-shaped (extremes worse than the
// neighbourhood of the estimated optimum).
func TestFig15Shape(t *testing.T) {
	res, err := Fig15(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"SSSP-BF", "PageRank", "LP"} {
		s, ok := res.SeriesFor(algo)
		if !ok || len(s.Points) == 0 {
			t.Fatalf("%s: missing series", algo)
		}
		var min, at1, atMax float64
		min = 1e18
		for _, p := range s.Points {
			v := p.Measured.Seconds()
			if v < min {
				min = v
			}
			if p.Blocks == 1 {
				at1 = v
			}
			if p.Blocks == 5000 {
				atMax = v
			}
		}
		if atMax < min*1.01 {
			t.Fatalf("%s: no right arm of the U: s=5000 %.4f vs min %.4f", algo, atMax, min)
		}
		if s.EstOpt < 1 {
			t.Fatalf("%s: estimated s_opt %d", algo, s.EstOpt)
		}
		_ = at1
	}
}

// Every result type renders without panicking and mentions its figure.
func TestStringOutputs(t *testing.T) {
	o := testOpts()
	t1, err := TableDatasets(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t1.String(), "Table I") {
		t.Fatal("table string missing title")
	}
	f13, err := Fig13(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f13.String(), "Fig 13") {
		t.Fatal("fig13 string missing title")
	}
}
