package harness

import (
	"fmt"
	"strings"

	"gxplug/internal/gen"
)

// Table1Row is one dataset row: the paper's real sizes next to the
// generated stand-in's.
type Table1Row struct {
	Dataset       gen.Dataset
	Type          string
	PaperVertices int64
	PaperEdges    int64
	GenVertices   int
	GenEdges      int64
	GenAvgDegree  float64
}

// Table1Result reproduces Table I.
type Table1Result struct {
	Scale int64
	Rows  []Table1Row
}

// TableDatasets generates every Table I stand-in and reports its shape
// against the paper's original.
func TableDatasets(o Options) (*Table1Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	res := &Table1Result{Scale: o.Scale}
	for _, d := range gen.AllDatasets() {
		info, err := gen.Catalog(d)
		if err != nil {
			return nil, err
		}
		g, err := load(d, o)
		if err != nil {
			return nil, err
		}
		st := g.Stats()
		res.Rows = append(res.Rows, Table1Row{
			Dataset:       d,
			Type:          info.Type,
			PaperVertices: info.PaperVertices,
			PaperEdges:    info.PaperEdges,
			GenVertices:   st.Vertices,
			GenEdges:      st.Edges,
			GenAvgDegree:  st.AvgDegree,
		})
	}
	return res, nil
}

// String renders the table.
func (r *Table1Result) String() string {
	var b strings.Builder
	header(&b, fmt.Sprintf("Table I: Datasets (stand-ins at 1/%d scale)", r.Scale),
		"Dataset", "Type", "Paper V", "Paper E", "Gen V", "Gen E", "Gen deg")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s%-16s%-16d%-16d%-16d%-16d%-16.2f\n",
			row.Dataset, row.Type, row.PaperVertices, row.PaperEdges,
			row.GenVertices, row.GenEdges, row.GenAvgDegree)
	}
	return b.String()
}
