// Package analysis is a deliberately small, dependency-free mirror of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects a
// type-checked package through a Pass and reports Diagnostics.
//
// The repository builds offline (no module proxy), so it cannot take
// the real x/tools dependency; this package keeps the same shape — an
// Analyzer with a Run(*Pass) hook, a Pass carrying Fset/Files/Pkg/
// TypesInfo, positional Diagnostics — so the gxlint analyzers are a
// mechanical port away from the upstream framework if the dependency
// ever becomes available. Only the features gxlint needs exist: no
// facts, no required-analyzer graph, no suggested fixes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one static check. Name appears in diagnostics and as
// the driver's enable/disable flag; Doc is the one-line invariant it
// enforces.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Path is the package path under analysis as the build system
	// reports it (the vet config ImportPath or the fixture path);
	// analyzers gate themselves on it rather than on Pkg.Path so
	// fixtures and the real tree match the same way.
	Path string

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the driver
}

// Analyze type-checks files (already parsed with comments) as package
// path and runs every analyzer over the result, returning diagnostics
// sorted by position. Type-checking uses imp to resolve imports; a
// type-check error is returned (with any diagnostics gathered so far)
// rather than panicking, so drivers decide whether it is fatal.
func Analyze(fset *token.FileSet, files []*ast.File, path, goVersion string, imp types.Importer, analyzers []*Analyzer) ([]Diagnostic, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Error:     func(error) {}, // collect all errors via the returned one
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}

	var diags []Diagnostic
	for _, a := range analyzers {
		a := a
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Path:      path,
			Report: func(d Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
