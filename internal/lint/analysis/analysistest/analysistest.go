// Package analysistest runs an analysis.Analyzer over fixture packages
// laid out GOPATH-style under a testdata/src directory and checks its
// diagnostics against // want comments, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract closely enough
// that fixtures would port unchanged.
//
// Expectation syntax: a comment on the line the diagnostic is reported
// at, holding one quoted or backquoted regexp per expected diagnostic:
//
//	for k := range m { // want `non-deterministic iteration`
//
// Every diagnostic must match an expectation on its line and every
// expectation must be matched by exactly one diagnostic.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"gxplug/internal/lint/analysis"
)

// Run loads each fixture package path under dir/src, applies the
// analyzer, and reports any mismatch between diagnostics and // want
// expectations as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := newLoader(filepath.Join(dir, "src"))
	for _, path := range pkgPaths {
		runOne(t, ld, a, path)
	}
}

func runOne(t *testing.T, ld *loader, a *analysis.Analyzer, path string) {
	t.Helper()
	pkg, err := ld.load(path)
	if err != nil {
		t.Errorf("%s: loading fixture: %v", path, err)
		return
	}
	diags, err := analysis.Analyze(ld.fset, pkg.files, path, "", ld, []*analysis.Analyzer{a})
	if err != nil {
		t.Errorf("%s: %v", path, err)
		return
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*expectation)
	for _, f := range pkg.files {
		filename := ld.fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, exp := range parseExpectations(t, c.Text) {
					k := key{filename, ld.fset.Position(c.Pos()).Line}
					wants[k] = append(wants[k], exp)
				}
			}
		}
	}

	for _, d := range diags {
		pos := ld.fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for _, exp := range wants[k] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var keys []key
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, exp := range wants[k] {
			if !exp.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, exp.re)
			}
		}
	}
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func parseExpectations(t *testing.T, comment string) []*expectation {
	t.Helper()
	text, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(comment, "//")), "want ")
	if !ok {
		return nil
	}
	var exps []*expectation
	for _, m := range wantRe.FindAllString(text, -1) {
		pat := m
		if strings.HasPrefix(pat, "\"") {
			var err error
			pat, err = strconv.Unquote(pat)
			if err != nil {
				t.Fatalf("bad want pattern %s: %v", m, err)
			}
		} else {
			pat = strings.Trim(pat, "`")
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("bad want regexp %q: %v", pat, err)
		}
		exps = append(exps, &expectation{re: re})
	}
	return exps
}

// loader type-checks fixture packages, resolving imports first against
// sibling fixture directories and then against the standard library
// (compiled from GOROOT source, so no export data is required).
type loader struct {
	root string
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*fixturePkg
}

type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root: root,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*fixturePkg),
	}
}

// Import implements types.Importer for fixture-to-fixture imports.
func (ld *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(ld.root, filepath.FromSlash(path))); err == nil {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) load(path string) (*fixturePkg, error) {
	if p, ok := ld.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return p, nil
	}
	ld.pkgs[path] = nil // cycle guard
	dir := filepath.Join(ld.root, filepath.FromSlash(path))
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return nil, fmt.Errorf("no fixture sources in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	p := &fixturePkg{pkg: pkg, files: files}
	ld.pkgs[path] = p
	return p, nil
}
