package lint

import (
	"go/ast"
	"go/types"
	"regexp"

	"gxplug/internal/lint/analysis"
)

// ClockChargeAnalyzer enforces the middleware costing discipline from
// the stall-recovery work: simulated time only stays deterministic if
// every exported fault/retry/transfer entry point on the gxplug Agent
// accounts its work to a virtual-clock bucket on every path — either by
// calling charge/Charge before returning, or by returning the cost as a
// time.Duration for the caller to charge. An early return that skips
// the charge makes a fault or retry free, which silently changes the
// makespan of every run that hits it.
//
// Entry points are the exported Agent methods named Request*, Inject*,
// Crash*, Flush, CheckpointSync, and UploadQueried. Returns that
// surface a non-nil error are exempt: a failed request aborts the
// simulated run, and injected faults charge their cost inside the
// fault machinery (the stall schedule, fireOOM) before the error
// propagates. Other paths that are deliberately free (zero-work
// early-outs, pure arming of a fault consumed — and charged — later)
// carry //gxlint:uncharged <reason> on the return statement, or on the
// method declaration when the whole entry point is free by design.
var ClockChargeAnalyzer = &analysis.Analyzer{
	Name: "clockcharge",
	Doc:  "require exported gxplug middleware entry points to charge a virtual-clock bucket on every return path",
	Run:  runClockCharge,
}

var entryPointName = regexp.MustCompile(`^(Request|Inject|Crash)|^(Flush|CheckpointSync|UploadQueried)$`)

func runClockCharge(pass *analysis.Pass) error {
	if !clockChargeExact(pass.Path) {
		return nil
	}
	dirs := indexDirectives(pass)
	for _, f := range pass.Files {
		if isTestFile(fileName(pass, f)) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() || !entryPointName.MatchString(fd.Name.Name) {
				continue
			}
			if recvTypeName(fd) != "Agent" {
				continue
			}
			cc := &chargeCheck{pass: pass, dirs: dirs, fd: fd}
			charged, terminated := cc.scanList(fd.Body.List, false)
			if !terminated && !charged && !dirs.suppressed("uncharged", fd.Body.Rbrace) {
				pass.Reportf(fd.Body.Rbrace, "middleware entry point %s falls off the end without charging a virtual-clock bucket: call charge, return the cost as a time.Duration, or annotate with //gxlint:uncharged <reason>", fd.Name.Name)
			}
		}
	}
	return nil
}

func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// chargeCheck walks an entry point's body tracking, per path, whether a
// virtual-clock charge has happened yet (a lexical approximation of
// dominance: branches merge with AND, loops may run zero times).
type chargeCheck struct {
	pass *analysis.Pass
	dirs *directiveIndex
	fd   *ast.FuncDecl
}

// scanList folds scanStmt over a statement list. It returns the charged
// state after the list and whether the list unconditionally terminates
// (returns/panics on every path).
func (cc *chargeCheck) scanList(list []ast.Stmt, charged bool) (bool, bool) {
	for _, s := range list {
		var term bool
		charged, term = cc.scanStmt(s, charged)
		if term {
			return charged, true
		}
	}
	return charged, false
}

func (cc *chargeCheck) scanStmt(s ast.Stmt, charged bool) (bool, bool) {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		if !charged && !cc.returnsCost(s) && !cc.returnsError(s) && !cc.dirs.suppressed("uncharged", s.Pos()) {
			cc.pass.Reportf(s.Pos(), "middleware entry point %s returns without charging a virtual-clock bucket on this path: call charge, return the cost as a time.Duration, or annotate with //gxlint:uncharged <reason>", cc.fd.Name.Name)
		}
		return charged, true
	case *ast.BlockStmt:
		return cc.scanList(s.List, charged)
	case *ast.IfStmt:
		c0 := charged
		if s.Init != nil {
			c0, _ = cc.scanStmt(s.Init, c0)
		}
		if chargesIn(cc.pass, s.Cond) {
			c0 = true
		}
		cb, tb := cc.scanList(s.Body.List, c0)
		ce, te := c0, false
		if s.Else != nil {
			ce, te = cc.scanStmt(s.Else, c0)
		}
		switch {
		case tb && te:
			return true, true
		case tb:
			return ce, false
		case te:
			return cb, false
		default:
			return cb && ce, false
		}
	case *ast.ForStmt:
		c0 := charged
		if s.Init != nil {
			c0, _ = cc.scanStmt(s.Init, c0)
		}
		if s.Cond != nil && chargesIn(cc.pass, s.Cond) {
			c0 = true
		}
		cc.scanList(s.Body.List, c0) // body may run zero times
		return c0, false
	case *ast.RangeStmt:
		cc.scanList(s.Body.List, charged)
		return charged, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		allTerm := true
		hasDefault := false
		eachClauseBody(s, func(isDefault bool, body []ast.Stmt) {
			if isDefault {
				hasDefault = true
			}
			_, t := cc.scanList(body, charged)
			allTerm = allTerm && t
		})
		if hasDefault && allTerm {
			return true, true
		}
		return charged, false
	case *ast.LabeledStmt:
		return cc.scanStmt(s.Stmt, charged)
	case *ast.ExprStmt:
		if isPanicCall(s.X) {
			return charged, true
		}
		return charged || chargesIn(cc.pass, s.X), false
	case *ast.DeferStmt:
		// A deferred charge runs on every subsequent return.
		return charged || chargesIn(cc.pass, s.Call), false
	case *ast.AssignStmt, *ast.IncDecStmt, *ast.DeclStmt, *ast.GoStmt, *ast.SendStmt:
		return charged || chargesIn(cc.pass, s), false
	case *ast.BranchStmt:
		return charged, true // leaves this statement list
	}
	return charged, false
}

// returnsCost reports whether the return statement hands a non-constant
// (or constant non-zero) time.Duration back to the caller — the
// cost-returning half of the charging discipline.
func (cc *chargeCheck) returnsCost(ret *ast.ReturnStmt) bool {
	for _, r := range ret.Results {
		t := cc.pass.TypesInfo.TypeOf(r)
		if t == nil || !isDurationType(t) {
			continue
		}
		if tv, ok := cc.pass.TypesInfo.Types[r]; ok && tv.Value != nil {
			continue // a constant duration (e.g. 0) charges nothing real
		}
		return true
	}
	return false
}

// returnsError reports whether the return's last result is a non-nil
// error value. Error paths abort the simulated run; their cost, if
// any, was charged by the fault machinery that produced the error.
// (Lexical approximation: an error-typed variable that happens to hold
// nil at runtime still counts — the discipline targets the common
// `return nil` / `return res, nil` success paths.)
func (cc *chargeCheck) returnsError(ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return false
	}
	tv, ok := cc.pass.TypesInfo.Types[ret.Results[len(ret.Results)-1]]
	if !ok || tv.IsNil() || tv.Type == nil {
		return false
	}
	return types.Implements(tv.Type, errorInterface)
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isDurationType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Duration" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

// chargesIn reports whether the node contains a call of a function or
// method named charge/Charge, outside any nested function literal.
func chargesIn(pass *analysis.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if name == "charge" || name == "Charge" {
			found = true
		}
		return !found
	})
	return found
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// eachClauseBody visits the body of every case/comm clause of a
// switch/type-switch/select statement.
func eachClauseBody(s ast.Stmt, fn func(isDefault bool, body []ast.Stmt)) {
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	for _, c := range clauses {
		switch c := c.(type) {
		case *ast.CaseClause:
			fn(c.List == nil, c.Body)
		case *ast.CommClause:
			fn(c.Comm == nil, c.Body)
		}
	}
}
