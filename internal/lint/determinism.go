package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"gxplug/internal/lint/analysis"
)

// DeterminismAnalyzer enforces the repository's central guarantee — a
// scenario's results and virtual makespan are a pure function of the
// scenario — at the source level, in the packages that execute inside
// the simulated world:
//
//   - no wall clocks: time.Now/time.Since read host time, which must
//     never influence a simulated path (virtual time comes from
//     simtime.Clock);
//   - no global randomness: math/rand's top-level functions draw from
//     the process-global, unseeded source, so two runs of the same
//     scenario diverge (use a seeded *rand.Rand);
//   - no map-order leaks: ranging over a map visits keys in a random
//     order, so a loop body that does order-sensitive work (calls,
//     float accumulation, writes into shared buffers) makes results
//     machine- and run-dependent. Collect and sort the keys first, or
//     prove the body order-insensitive.
//
// Suppress with //gxlint:wallclock <reason> (clock/randomness) or
// //gxlint:ordered <reason> (map ranges) on the offending statement.
var DeterminismAnalyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clocks, global randomness, and map-iteration-order leaks in simulated paths",
	Run:  runDeterminism,
}

func runDeterminism(pass *analysis.Pass) error {
	if !pkgMatch(pass.Path, determinismTargets) {
		return nil
	}
	dirs := indexDirectives(pass)
	for _, f := range pass.Files {
		if isTestFile(fileName(pass, f)) {
			continue
		}
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkWallClock(pass, dirs, n)
			case *ast.RangeStmt:
				checkMapRange(pass, dirs, n, stack)
			}
			return true
		})
	}
	return nil
}

func checkWallClock(pass *analysis.Pass, dirs *directiveIndex, call *ast.CallExpr) {
	for _, name := range []string{"Now", "Since"} {
		if isPkgLevelCall(pass, call, "time", name) {
			if !dirs.suppressed("wallclock", call.Pos()) {
				pass.Reportf(call.Pos(), "call of time.%s in a simulated path: virtual time comes from simtime.Clock, never the host clock (//gxlint:wallclock <reason> to suppress)", name)
			}
			return
		}
	}
	obj := calleeObj(pass, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods on an explicitly seeded *rand.Rand are fine
	}
	switch fn.Name() {
	case "New", "NewSource", "NewChaCha8", "NewPCG", "NewZipf":
		return // constructors build the seeded source the rule asks for
	}
	if !dirs.suppressed("wallclock", call.Pos()) {
		pass.Reportf(call.Pos(), "call of global %s.%s draws from the process-wide random source: simulated paths must use a scenario-seeded *rand.Rand (//gxlint:wallclock <reason> to suppress)", fn.Pkg().Name(), fn.Name())
	}
}

// checkMapRange flags ranges over maps whose body is not provably
// order-insensitive.
func checkMapRange(pass *analysis.Pass, dirs *directiveIndex, rs *ast.RangeStmt, stack []ast.Node) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if dirs.suppressed("ordered", rs.Pos()) {
		return
	}
	lc := newLoopCheck(pass, rs)
	if bad, why := lc.check(); bad != nil {
		pass.Reportf(rs.Pos(), "non-deterministic iteration over map %s: %s; collect and sort the keys first or annotate with //gxlint:ordered <reason>", types.ExprString(rs.X), why)
		return
	}
	// Keys/values appended into outer slices must be sorted before the
	// enclosing function is done with them, or the map order escaped
	// into the slice.
	_, body := enclosingFunc(stack)
	for obj, id := range lc.appended {
		if body == nil || !sortedAfter(pass, body, rs, obj) {
			pass.Reportf(rs.Pos(), "non-deterministic iteration over map %s: %s collects keys in map order and is never sorted in this function; sort it or annotate with //gxlint:ordered <reason>", types.ExprString(rs.X), id.Name)
		}
	}
}

// loopCheck classifies a map-range body as order-insensitive or not.
// The allowed vocabulary is exactly the set of operations whose final
// effect is independent of visit order:
//
//   - declarations of and writes to loop-local variables (fresh every
//     iteration);
//   - keyed writes (m2[expr] = v): each key written at most once per
//     distinct map entry;
//   - exactly-commutative accumulation (++/--/+=/... on integer-like
//     types; floating-point addition is not associative, so float
//     accumulators leak order into low bits);
//   - append of loop values into an outer slice, provided the slice is
//     later sorted (checked by the caller);
//   - delete on a map with call-free arguments;
//   - if/for/range/block structure over the above with call-free
//     conditions, continue/break, and returns of loop-independent
//     call-free values (any-match early exit).
//
// Everything else — method and function calls above all — is assumed
// order-sensitive.
type loopCheck struct {
	pass     *analysis.Pass
	rs       *ast.RangeStmt
	loopVars map[types.Object]bool // range key/value + body-local variables
	appended map[types.Object]*ast.Ident
	bad      ast.Node
	why      string
}

func newLoopCheck(pass *analysis.Pass, rs *ast.RangeStmt) *loopCheck {
	lc := &loopCheck{
		pass:     pass,
		rs:       rs,
		loopVars: make(map[types.Object]bool),
		appended: make(map[types.Object]*ast.Ident),
	}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				lc.loopVars[obj] = true
			}
		}
	}
	return lc
}

func (lc *loopCheck) check() (ast.Node, string) {
	lc.stmts(lc.rs.Body.List)
	return lc.bad, lc.why
}

func (lc *loopCheck) fail(n ast.Node, why string) bool {
	if lc.bad == nil {
		lc.bad, lc.why = n, why
	}
	return false
}

func (lc *loopCheck) stmts(list []ast.Stmt) bool {
	for _, s := range list {
		if !lc.stmt(s) {
			return false
		}
	}
	return true
}

func (lc *loopCheck) stmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return lc.assign(s)
	case *ast.IncDecStmt:
		return lc.write(s.X, nil, token.ADD_ASSIGN, s)
	case *ast.DeclStmt:
		gen, ok := s.Decl.(*ast.GenDecl)
		if !ok || gen.Tok != token.VAR && gen.Tok != token.CONST {
			return lc.fail(s, "declaration with order-sensitive effects")
		}
		for _, spec := range gen.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return lc.fail(s, "declaration with order-sensitive effects")
			}
			for _, id := range vs.Names {
				if obj := lc.pass.TypesInfo.Defs[id]; obj != nil {
					lc.loopVars[obj] = true
				}
			}
			for _, v := range vs.Values {
				if !callFree(lc.pass, v) {
					return lc.fail(v, "a call in a local declaration may observe iteration order")
				}
			}
		}
		return true
	case *ast.IfStmt:
		if s.Init != nil && !lc.stmt(s.Init) {
			return false
		}
		if !callFree(lc.pass, s.Cond) {
			return lc.fail(s.Cond, "a call in the loop condition may observe iteration order")
		}
		if !lc.stmts(s.Body.List) {
			return false
		}
		if s.Else != nil {
			return lc.stmt(s.Else)
		}
		return true
	case *ast.BlockStmt:
		return lc.stmts(s.List)
	case *ast.ForStmt:
		for _, sub := range []ast.Stmt{s.Init, s.Post} {
			if sub != nil && !lc.stmt(sub) {
				return false
			}
		}
		if s.Cond != nil && !callFree(lc.pass, s.Cond) {
			return lc.fail(s.Cond, "a call in a nested loop condition may observe iteration order")
		}
		return lc.stmts(s.Body.List)
	case *ast.RangeStmt:
		if !callFree(lc.pass, s.X) {
			return lc.fail(s.X, "a call producing a nested range operand may observe iteration order")
		}
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if obj := lc.pass.TypesInfo.Defs[id]; obj != nil {
					lc.loopVars[obj] = true
				}
			}
		}
		return lc.stmts(s.Body.List)
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE || s.Tok == token.BREAK {
			return true
		}
		return lc.fail(s, "goto leaves the loop body in iteration order")
	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if ok && builtinName(lc.pass, call) == "delete" {
			for _, arg := range call.Args {
				if !callFree(lc.pass, arg) {
					return lc.fail(arg, "a call in delete's arguments may observe iteration order")
				}
			}
			return true
		}
		return lc.fail(s, "the body performs a call, whose effects are assumed order-sensitive")
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if !callFree(lc.pass, r) {
				return lc.fail(r, "a call in a return value may observe iteration order")
			}
			if refersTo(lc.pass, r, lc.loopVars) {
				return lc.fail(r, "returning a loop variable exposes which key was visited first")
			}
		}
		return true
	case *ast.EmptyStmt:
		return true
	}
	return lc.fail(s, "statement kind with order-sensitive effects")
}

func (lc *loopCheck) assign(s *ast.AssignStmt) bool {
	if s.Tok == token.DEFINE {
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				if obj := lc.pass.TypesInfo.Defs[id]; obj != nil {
					lc.loopVars[obj] = true
				}
			}
		}
	}
	// Pair each LHS with its RHS where the shapes line up (the common
	// cases: 1:1, and v, ok := m[k] with one RHS).
	for i, l := range s.Lhs {
		var r ast.Expr
		if len(s.Rhs) == len(s.Lhs) {
			r = s.Rhs[i]
		} else if len(s.Rhs) == 1 {
			r = s.Rhs[0]
		}
		if !lc.write(l, r, s.Tok, s) {
			return false
		}
	}
	return true
}

// write validates one store l <tok>= r inside the loop body.
func (lc *loopCheck) write(l, r ast.Expr, tok token.Token, at ast.Stmt) bool {
	l = ast.Unparen(l)
	// Blank and loop-local targets are always fine as long as the RHS
	// performs no calls.
	if id, ok := l.(*ast.Ident); ok {
		if id.Name == "_" {
			return true
		}
		obj := lc.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = lc.pass.TypesInfo.Uses[id]
		}
		if obj != nil && lc.loopVars[obj] {
			return lc.rhsOK(r, at)
		}
		// Outer variable.
		if call, ok := appendCallTo(lc.pass, r, obj); ok {
			for _, arg := range call.Args[1:] {
				if !callFree(lc.pass, arg) {
					return lc.fail(arg, "a call in append's arguments may observe iteration order")
				}
			}
			lc.appended[obj] = id
			return true
		}
		return lc.scalarWrite(l, r, tok, at, obj)
	}
	// Keyed writes: m2[k] = v, s[i] = v, s[i] += n.
	if ix, ok := l.(*ast.IndexExpr); ok {
		if !callFree(lc.pass, ix.X) || !callFree(lc.pass, ix.Index) {
			return lc.fail(ix, "a call computing the write target may observe iteration order")
		}
		if tok == token.ASSIGN {
			if _, isAppend := appendCallTo(lc.pass, r, nil); isAppend {
				return lc.fail(at, "appending to a shared element accumulates in map-iteration order")
			}
			return lc.rhsOK(r, at)
		}
		return lc.commutative(l, r, at)
	}
	// Writes through a loop-local pointer (e.g. e.dirty = false where e
	// is the range value) touch each entry independently of order.
	if base := baseIdent(l); base != nil {
		obj := lc.pass.TypesInfo.Uses[base]
		if obj != nil && lc.loopVars[obj] {
			return lc.rhsOK(r, at)
		}
		if tok == token.ASSIGN {
			if !lc.rhsOK(r, at) {
				return false
			}
			if refersTo(lc.pass, r, lc.loopVars) {
				return lc.fail(at, "the last map entry visited wins this write, so the result depends on iteration order")
			}
			return true
		}
		return lc.commutative(l, r, at)
	}
	return lc.fail(at, "write target too complex to prove order-insensitive")
}

// scalarWrite validates a store to an outer scalar variable.
func (lc *loopCheck) scalarWrite(l, r ast.Expr, tok token.Token, at ast.Stmt, obj types.Object) bool {
	switch tok {
	case token.ASSIGN, token.DEFINE:
		if !lc.rhsOK(r, at) {
			return false
		}
		if refersTo(lc.pass, r, lc.loopVars) {
			return lc.fail(at, "the last map entry visited wins this write, so the result depends on iteration order")
		}
		return true
	default:
		return lc.commutative(l, r, at)
	}
}

// commutative validates an accumulating store (+=, ++, |=, ...): exact
// for integer-like types, order-sensitive for floats (non-associative
// addition) and everything else.
func (lc *loopCheck) commutative(l, r ast.Expr, at ast.Stmt) bool {
	if r != nil && !lc.rhsOK(r, at) {
		return false
	}
	if !intLike(lc.pass.TypesInfo.TypeOf(l)) {
		return lc.fail(at, "accumulating a non-integer (float addition is not associative, so the low bits depend on iteration order)")
	}
	return true
}

func (lc *loopCheck) rhsOK(r ast.Expr, at ast.Stmt) bool {
	if r == nil {
		return true
	}
	if !callFree(lc.pass, r) {
		return lc.fail(r, "the body performs a call, whose effects are assumed order-sensitive")
	}
	return true
}

// appendCallTo reports whether e is append(target, ...) growing the
// slice named by obj (any slice if obj is nil).
func appendCallTo(pass *analysis.Pass, e ast.Expr, obj types.Object) (*ast.CallExpr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || builtinName(pass, call) != "append" || len(call.Args) == 0 {
		return nil, false
	}
	if obj == nil {
		return call, true
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != obj {
		return nil, false
	}
	return call, true
}

// baseIdent digs to the identifier at the base of a selector/index/
// star chain, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether some sort.* or slices.Sort* call after
// the range statement, inside the same function body, takes the
// collected slice as an argument.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !posAfter(call.Pos(), rs) {
			return true
		}
		fn, ok := calleeObj(pass, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}
