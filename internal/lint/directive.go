package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"gxplug/internal/lint/analysis"
)

// Suppression directives. A directive is a comment of the form
//
//	//gxlint:<name> <reason>
//
// attached to the statement it suppresses: trailing on the statement's
// first line, or alone on the line above it. The reason is mandatory —
// a bare directive suppresses nothing and is itself reported by the
// directive analyzer — because a suppression without a recorded
// justification is exactly the tribal knowledge this suite exists to
// eliminate.
const directivePrefix = "//gxlint:"

// directiveNames maps each directive to the analyzer that honors it.
var directiveNames = map[string]string{
	"ordered":   "determinism", // map iteration order provably does not reach results
	"wallclock": "determinism", // wall-clock/global-randomness read outside the simulated world
	"nilgated":  "nilgate",     // observer value is proven non-nil by construction
	"unsized":   "wiresize",    // allocation size is bounded by other means
	"uncharged": "clockcharge", // entry point is deliberately free on this path
}

// A directive is one parsed //gxlint: comment plus the source range of
// the node it annotates.
type directive struct {
	name   string
	reason string
	pos    token.Pos
	// start/end bound the annotated node; a finding inside the range is
	// suppressed. NoPos bounds mean the comment dangles (annotates
	// nothing) and suppresses nothing.
	start, end token.Pos
}

// directiveIndex holds every directive in a package, for suppression
// lookups by the analyzers.
type directiveIndex struct {
	dirs []directive
}

// indexDirectives parses all //gxlint: comments in the pass's files,
// resolving each to the node it annotates via the file's comment map.
func indexDirectives(pass *analysis.Pass) *directiveIndex {
	ix := &directiveIndex{}
	for _, f := range pass.Files {
		cmap := ast.NewCommentMap(pass.Fset, f, f.Comments)
		// Invert: comment group -> smallest annotated node. A group can
		// be associated with several nodes (e.g. a statement and its
		// enclosing declaration); the smallest keeps suppression tight.
		owner := make(map[*ast.CommentGroup]ast.Node)
		for node, groups := range cmap {
			for _, g := range groups {
				if cur, ok := owner[g]; !ok || nodeSpan(node) < nodeSpan(cur) {
					owner[g] = node
				}
			}
		}
		for _, g := range f.Comments {
			for _, c := range g.List {
				name, reason, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				d := directive{name: name, reason: reason, pos: c.Pos()}
				if node, ok := owner[g]; ok {
					d.start, d.end = node.Pos(), node.End()
				}
				ix.dirs = append(ix.dirs, d)
			}
		}
	}
	return ix
}

func nodeSpan(n ast.Node) token.Pos {
	return n.End() - n.Pos()
}

// parseDirective splits "//gxlint:name reason..." into its parts.
// Block-comment form (/*gxlint:name reason*/) is accepted too.
func parseDirective(text string) (name, reason string, ok bool) {
	var rest string
	switch {
	case strings.HasPrefix(text, directivePrefix):
		rest = text[len(directivePrefix):]
	case strings.HasPrefix(text, "/*gxlint:"):
		rest = strings.TrimSuffix(text[len("/*gxlint:"):], "*/")
	default:
		return "", "", false
	}
	name, reason, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(name), strings.TrimSpace(reason), true
}

// suppressed reports whether a finding at pos is covered by a directive
// of the given name. Directives without a reason never suppress.
func (ix *directiveIndex) suppressed(name string, pos token.Pos) bool {
	for _, d := range ix.dirs {
		if d.name == name && d.reason != "" && d.start.IsValid() && d.start <= pos && pos < d.end {
			return true
		}
	}
	return false
}

// DirectiveAnalyzer validates the suppression comments themselves: a
// //gxlint: directive must name a known check and carry a reason. It
// runs on every package (including tests) so a bare suppression can
// never land anywhere in the tree.
var DirectiveAnalyzer = &analysis.Analyzer{
	Name: "directive",
	Doc:  "check that //gxlint: suppressions name a known check and carry a reason",
	Run:  runDirective,
}

func runDirective(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				name, reason, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				if _, known := directiveNames[name]; !known {
					pass.Reportf(c.Pos(), "unknown gxlint directive %q (known: ordered, wallclock, nilgated, unsized, uncharged)", name)
					continue
				}
				if reason == "" {
					pass.Reportf(c.Pos(), "gxlint:%s directive needs a reason: //gxlint:%s <why this is safe>", name, name)
				}
			}
		}
	}
	return nil
}
