// Package lint holds gxlint, the repository's custom static-analysis
// suite. Each analyzer encodes an invariant the runtime tests pin after
// the fact, so that refactors of the hot paths fail the build — not a
// bisect — when they break one:
//
//	determinism — no wall clocks, no unseeded global randomness, and no
//	              map-iteration order leaking into results in simulated
//	              paths (engine, gxplug, algos, cluster, simtime, gx,
//	              harness).
//	nilgate     — engine.Observer values are only ever called under a
//	              nil check (the allocs/op contract from the observer
//	              work: a nil observer costs nothing).
//	wiresize    — decode paths never allocate from a wire-derived size
//	              without a bound check against the verified input size
//	              (the lying-header class of bugs).
//	clockcharge — exported gxplug middleware entry points charge a
//	              virtual-clock bucket on every return path (the
//	              stall-recovery discipline).
//	directive   — every //gxlint: suppression names a known check and
//	              carries a reason.
//
// Suppression: annotate the exact statement with
// //gxlint:<directive> <reason>; see directive.go for the catalog.
// DESIGN.md ("Static analysis") maps each analyzer to the invariant it
// encodes and the runtime test pinning the other half.
package lint

import (
	"strings"

	"gxplug/internal/lint/analysis"
)

// Analyzers returns the full gxlint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DeterminismAnalyzer,
		NilGateAnalyzer,
		WireSizeAnalyzer,
		ClockChargeAnalyzer,
		DirectiveAnalyzer,
	}
}

// determinismTargets are the packages whose execution is part of the
// simulated, bit-reproducible world. Paths are segment suffixes so the
// same analyzers match the real tree ("gxplug/internal/engine"), its
// subpackages, and test fixtures ("internal/engine").
var determinismTargets = []string{
	"internal/engine",
	"internal/gxplug",
	"internal/algos",
	"internal/cluster",
	"internal/simtime",
	"internal/harness",
	// The serving layer feeds results straight from the executor; wall
	// clocks belong only to the HTTP edge in cmd/gxd, never in here.
	"internal/serve",
	"gx",
	// Dynamic graphs made the substrate and the batch-stream codec part
	// of the reproducible world: ApplyBatch versioning and .gxb decoding
	// feed digests the result cache keys on, so they carry the same
	// no-wall-clock, no-map-order discipline as the engine.
	"internal/graph",
	"internal/gen/ingest",
}

// wireSizeTargets are the packages that decode untrusted bytes (files,
// shared-memory segments) into allocations.
var wireSizeTargets = []string{
	"internal/gen/ingest",
	"internal/shm",
}

// clockChargeTargets is the middleware package whose exported entry
// points own the virtual-clock charging discipline.
var clockChargeTargets = []string{
	"internal/gxplug",
}

// pkgMatch reports whether the package path under analysis falls under
// any target: some slash-bounded prefix of path ends in the target.
// "gxplug/internal/engine/powergraph" matches target "internal/engine";
// "gxplug/internal/gxplug/synccache" matches target "internal/gxplug".
func pkgMatch(path string, targets []string) bool {
	// Vet IDs can carry a " [pkg.test]" variant suffix; analysis applies
	// to the variant exactly as to the base package.
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	for _, t := range targets {
		for i := 0; ; {
			j := strings.Index(path[i:], t)
			if j < 0 {
				break
			}
			j += i
			startOK := j == 0 || path[j-1] == '/'
			end := j + len(t)
			endOK := end == len(path) || path[end] == '/'
			if startOK && endOK {
				return true
			}
			i = j + 1
		}
	}
	return false
}

// clockChargeExact is pkgMatch restricted to the package itself, not
// its subpackages: synccache/pipeline/balance are cost models, not
// entry points.
func clockChargeExact(path string) bool {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	for _, t := range clockChargeTargets {
		if path == t || strings.HasSuffix(path, "/"+t) {
			return true
		}
	}
	return false
}

// isTestFile reports whether filename is a _test.go file. The runtime
// invariants apply to production code: tests and benchmarks measure
// wall clocks and iterate maps on purpose, and keep their own
// determinism via the assertions they make.
func isTestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}
