package lint

import (
	"testing"

	"gxplug/internal/lint/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", DeterminismAnalyzer, "det/internal/engine")
}

func TestNilGate(t *testing.T) {
	analysistest.Run(t, "testdata", NilGateAnalyzer, "nilgate/consumer")
}

func TestWireSize(t *testing.T) {
	analysistest.Run(t, "testdata", WireSizeAnalyzer, "wire/internal/gen/ingest")
}

func TestClockCharge(t *testing.T) {
	analysistest.Run(t, "testdata", ClockChargeAnalyzer, "charge/internal/gxplug")
}

func TestDirective(t *testing.T) {
	analysistest.Run(t, "testdata", DirectiveAnalyzer, "directives/a")
}

func TestPkgMatch(t *testing.T) {
	cases := []struct {
		path    string
		targets []string
		want    bool
	}{
		{"gxplug/internal/engine", determinismTargets, true},
		{"gxplug/internal/engine/powergraph", determinismTargets, true},
		{"gxplug/internal/gxplug/synccache", determinismTargets, true},
		{"gxplug/gx", determinismTargets, true},
		{"gxplug/internal/serve", determinismTargets, true},
		{"gxplug/cmd/gxd", determinismTargets, false},
		{"gxplug/internal/engine [gxplug/internal/engine.test]", determinismTargets, true},
		{"det/internal/engine", determinismTargets, true},
		{"gxplug/internal/gen/ingest", determinismTargets, true},
		{"gxplug/internal/graph", determinismTargets, true},
		{"gxplug/cmd/gxrun", determinismTargets, false},
		{"gxplug/internal/gen/ingest", wireSizeTargets, true},
		{"gxplug/internal/shm", wireSizeTargets, true},
		{"gxplug/internal/gen", wireSizeTargets, false},
	}
	for _, c := range cases {
		if got := pkgMatch(c.path, c.targets); got != c.want {
			t.Errorf("pkgMatch(%q) = %v, want %v", c.path, got, c.want)
		}
	}
	if !clockChargeExact("gxplug/internal/gxplug") {
		t.Errorf("clockChargeExact should match the gxplug package itself")
	}
	if clockChargeExact("gxplug/internal/gxplug/synccache") {
		t.Errorf("clockChargeExact must not match subpackages: they are cost models, not entry points")
	}
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text         string
		name, reason string
		ok           bool
	}{
		{"//gxlint:ordered keys are sorted downstream", "ordered", "keys are sorted downstream", true},
		{"//gxlint:unsized", "unsized", "", true},
		{"/*gxlint:uncharged fail fast*/", "uncharged", "fail fast", true},
		{"// ordinary comment", "", "", false},
		{"//nolint:all", "", "", false},
	}
	for _, c := range cases {
		name, reason, ok := parseDirective(c.text)
		if name != c.name || reason != c.reason || ok != c.ok {
			t.Errorf("parseDirective(%q) = %q, %q, %v; want %q, %q, %v", c.text, name, reason, ok, c.name, c.reason, c.ok)
		}
	}
}
