package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gxplug/internal/lint/analysis"
)

// NilGateAnalyzer enforces the observer contract: an engine.Observer is
// an optional hook, and the zero-allocation benchmarks only hold
// because every invocation — and all the report-building work feeding
// it — is gated on the observer being non-nil. An unguarded call turns
// a nil observer into a panic and an always-on observer into an
// allocation regression, so every call of an Observer-typed value must
// be dominated by a nil check of that same value.
//
// Recognized guards (syntactic domination — the call must sit in code
// only reachable when the observer is non-nil):
//
//	if obs != nil { obs(info) }
//	if obs == nil { return }; ...; obs(info)
//	observing := obs != nil; if observing { obs(info) }
//
// Suppress with //gxlint:nilgated <reason> when non-nilness is
// established elsewhere by construction.
var NilGateAnalyzer = &analysis.Analyzer{
	Name: "nilgate",
	Doc:  "require every call of an engine.Observer value to be dominated by a nil check",
	Run:  runNilGate,
}

func runNilGate(pass *analysis.Pass) error {
	dirs := indexDirectives(pass)
	for _, f := range pass.Files {
		if isTestFile(fileName(pass, f)) {
			continue
		}
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isObserverType(pass.TypesInfo.TypeOf(call.Fun)) {
				return true
			}
			if isConversion(pass, call) {
				return true // Observer(fn) builds one, it doesn't call one
			}
			if nilGuarded(pass, call.Fun, call, stack) {
				return true
			}
			if !dirs.suppressed("nilgated", call.Pos()) {
				pass.Reportf(call.Pos(), "call of engine.Observer %s is not nil-gated: guard with `if %s != nil` so a nil observer stays free (//gxlint:nilgated <reason> to suppress)",
					types.ExprString(call.Fun), types.ExprString(call.Fun))
			}
			return true
		})
	}
	return nil
}

// isObserverType reports whether t (or its alias target) is the named
// type <...>/internal/engine.Observer.
func isObserverType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != "Observer" || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == "internal/engine" || strings.HasSuffix(p, "/internal/engine")
}

// nilGuarded reports whether the call of expr is dominated by a nil
// check of the structurally identical expression.
func nilGuarded(pass *analysis.Pass, expr ast.Expr, call *ast.CallExpr, stack []ast.Node) bool {
	want := types.ExprString(ast.Unparen(expr))
	_, body := enclosingFunc(stack)

	// Walk outward: an enclosing if whose condition implies expr != nil
	// (directly, via &&, or via a bool set from the comparison) guards
	// everything in its body.
	for i := len(stack) - 1; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		inBody := i+1 < len(stack) && stack[i+1] == ast.Node(ifs.Body)
		inElse := i+1 < len(stack) && ifs.Else != nil && stack[i+1] == ast.Node(ifs.Else)
		if inBody && condImpliesNonNil(pass, ifs.Cond, want, body, false) {
			return true
		}
		if inElse && condImpliesNonNil(pass, ifs.Cond, want, body, true) {
			return true
		}
	}

	// Early exit: a preceding `if expr == nil { return }` in any block
	// on the ancestor chain dominates the call.
	for i := len(stack) - 1; i >= 0; i-- {
		blk, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		// Statements before the one containing the call.
		var before []ast.Stmt
		for _, s := range blk.List {
			if s.Pos() <= call.Pos() && call.Pos() < s.End() {
				break
			}
			before = append(before, s)
		}
		for _, s := range before {
			ifs, ok := s.(*ast.IfStmt)
			if !ok {
				continue
			}
			if isNilCompare(pass, ifs.Cond, want, token.EQL) && terminates(ifs.Body.List) {
				return true
			}
		}
	}
	return false
}

// condImpliesNonNil reports whether cond being true (or false, when
// negated is set — the else branch) implies want != nil.
func condImpliesNonNil(pass *analysis.Pass, cond ast.Expr, want string, body *ast.BlockStmt, negated bool) bool {
	cond = ast.Unparen(cond)
	if !negated {
		if isNilCompare(pass, cond, want, token.NEQ) {
			return true
		}
		if b, ok := cond.(*ast.BinaryExpr); ok && b.Op == token.LAND {
			return condImpliesNonNil(pass, b.X, want, body, false) ||
				condImpliesNonNil(pass, b.Y, want, body, false)
		}
		// A boolean flag assigned from the comparison earlier in the
		// function: observing := obs != nil.
		if id, ok := cond.(*ast.Ident); ok && body != nil {
			return flagFromNilCompare(pass, body, id, want)
		}
		return false
	}
	// else-branch: `if expr == nil { ... } else { call }`.
	if isNilCompare(pass, cond, want, token.EQL) {
		return true
	}
	return false
}

// isNilCompare reports whether cond is `want <op> nil` (either side).
func isNilCompare(pass *analysis.Pass, cond ast.Expr, want string, op token.Token) bool {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != op {
		return false
	}
	x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
	if isNilIdent(pass, y) {
		return types.ExprString(x) == want
	}
	if isNilIdent(pass, x) {
		return types.ExprString(y) == want
	}
	return false
}

func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

// flagFromNilCompare reports whether ident is a bool assigned exactly
// once in body, from `want != nil`.
func flagFromNilCompare(pass *analysis.Pass, body *ast.BlockStmt, id *ast.Ident, want string) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	assigns := 0
	fromCompare := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, l := range as.Lhs {
			lid, ok := ast.Unparen(l).(*ast.Ident)
			if !ok {
				continue
			}
			lobj := pass.TypesInfo.Defs[lid]
			if lobj == nil {
				lobj = pass.TypesInfo.Uses[lid]
			}
			if lobj != obj {
				continue
			}
			assigns++
			if i < len(as.Rhs) {
				fromCompare = isNilCompare(pass, as.Rhs[i], want, token.NEQ)
			}
		}
		return true
	})
	return assigns == 1 && fromCompare
}
