// Package gxplug is the clockcharge fixture: exported Agent entry
// points must charge a virtual-clock bucket on every return path.
package gxplug

import (
	"errors"
	"time"
)

var errCrashed = errors.New("crashed")

type node struct{}

func (n *node) Charge(d time.Duration) {}

// Agent mirrors the real middleware agent's shape.
type Agent struct {
	node    *node
	crashed bool
	pending int
}

func (a *Agent) charge(d time.Duration) { a.node.Charge(d) }

// Charging on the single path is fine.
func (a *Agent) RequestPing() error {
	a.charge(time.Millisecond)
	return nil
}

// An early return that skips the charge is the regression this
// analyzer exists for.
func (a *Agent) RequestGen() error {
	if a.crashed {
		return nil // want `returns without charging a virtual-clock bucket`
	}
	a.charge(time.Millisecond)
	return nil
}

// Charging in both branches covers the merged path.
func (a *Agent) RequestMerge() error {
	if a.pending > 0 {
		a.charge(2 * time.Millisecond)
	} else {
		a.charge(time.Millisecond)
	}
	return nil
}

// Returning the cost as a time.Duration is the other half of the
// discipline: the caller charges it.
func (a *Agent) Flush() time.Duration {
	var cost time.Duration
	for i := 0; i < a.pending; i++ {
		cost += time.Millisecond
	}
	return cost
}

// Surfacing a non-nil error is exempt: the run aborts, and whatever
// the failure cost was charged inside the fault machinery.
func (a *Agent) RequestFail() error {
	if a.crashed {
		return errCrashed
	}
	a.charge(time.Millisecond)
	return nil
}

// A wrapped error on the success-shaped position counts too.
func (a *Agent) RequestWrapped() (int, error) {
	if a.crashed {
		return 0, errCrashed
	}
	a.charge(time.Millisecond)
	return a.pending, nil
}

// A constant zero duration charges nothing and does not count.
func (a *Agent) RequestNothing() time.Duration {
	return 0 // want `returns without charging a virtual-clock bucket`
}

// Falling off the end without charging is flagged too.
func (a *Agent) InjectStall(count int) {
	a.pending += count
} // want `falls off the end without charging`

// A whole entry point can be declared free on its declaration.
//
// the deterministic stall schedule
//
//gxlint:uncharged arming is free: the consuming request path charges
func (a *Agent) InjectOOM() {
	a.pending++
}

// A reasoned directive covers exactly the annotated return…
func (a *Agent) CrashDaemon(di int) error {
	if di < 0 {
		//gxlint:uncharged fail-fast on an out-of-range daemon is free by design
		return nil
	}
	if a.crashed {
		return nil // want `returns without charging a virtual-clock bucket`
	}
	a.charge(time.Millisecond)
	return nil
}

// …and a reasonless directive covers nothing.
func (a *Agent) RequestApply() error {
	if a.crashed {
		//gxlint:uncharged
		return nil // want `returns without charging a virtual-clock bucket`
	}
	a.charge(time.Millisecond)
	return nil
}

// A switch whose every case charges (or errors) before returning,
// with a default, terminates the function charged.
func (a *Agent) RequestRouted(kind int) error {
	switch kind {
	case 0:
		a.charge(time.Millisecond)
		return nil
	default:
		a.charge(2 * time.Millisecond)
		return nil
	}
}

// Without a default the fall-through path reaches the final return
// uncharged.
func (a *Agent) RequestRoutedLeak(kind int) error {
	switch kind {
	case 0:
		a.charge(time.Millisecond)
		return nil
	}
	return nil // want `returns without charging a virtual-clock bucket`
}

// A deferred charge covers every subsequent return.
func (a *Agent) RequestDeferred() error {
	defer a.charge(time.Millisecond)
	if a.crashed {
		return nil
	}
	return nil
}

// Unexported helpers and non-entry-point methods are out of scope.
func (a *Agent) Stats() int {
	return a.pending
}

func (a *Agent) request() error {
	return nil
}

// Entry-point-shaped methods on other receivers are out of scope:
// only the Agent owns the charging discipline.
type Prober struct{}

func (p Prober) RequestProbe() error {
	return nil
}
