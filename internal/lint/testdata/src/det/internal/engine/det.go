// Package engine is the determinism-analyzer fixture: it lives at a
// path matching the real engine package so the analyzer targets it.
package engine

import (
	"math/rand"
	"sort"
	"time"
)

func touch(int) {}

// Wall clocks are forbidden in simulated paths.
func wallClock() time.Duration {
	t := time.Now()      // want `call of time\.Now in a simulated path`
	return time.Since(t) // want `call of time\.Since in a simulated path`
}

// A justified exception is allowed on the annotated statement.
func wallClockSuppressed() time.Time {
	//gxlint:wallclock progress display only, never feeds results
	return time.Now()
}

// The global rand source is forbidden; a seeded *rand.Rand is fine.
func randomness(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	n := r.Intn(10)
	n += rand.Intn(10) // want `global rand\.Intn`
	return n
}

// Order-insensitive map-range bodies are allowed: keyed writes,
// integer accumulation, deletes, and local work.
func okBodies(m map[int]float64, other map[int]bool) (int, float64) {
	count := 0
	sum := 0.0
	inverse := make(map[float64]int, len(m))
	for k, v := range m {
		count++
		inverse[v] = k
		scaled := v * 2
		if scaled > 1 {
			other[k] = true
		}
		delete(other, k+1)
	}
	for k := range other {
		if other[k] {
			return count, sum
		}
	}
	return count, sum
}

// Collecting keys is allowed when they are sorted afterwards.
func okCollectAndSort(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Calls in the body are assumed order-sensitive.
func badCall(m map[int]int) {
	for k := range m { // want `non-deterministic iteration over map m`
		touch(k)
	}
}

// Floating-point accumulation leaks iteration order into the low bits.
func badFloatSum(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m { // want `non-deterministic iteration over map m`
		sum += v
	}
	return sum
}

// Unsorted key collection leaks iteration order into the slice.
func badUnsortedKeys(m map[int]int) []int {
	var keys []int
	for k := range m { // want `keys collects keys in map order and is never sorted`
		keys = append(keys, k)
	}
	return keys
}

// Returning a loop variable exposes which entry was visited first.
func badFirstKey(m map[int]int) int {
	for k := range m { // want `non-deterministic iteration over map m`
		return k
	}
	return -1
}

// A reasoned directive silences exactly the annotated loop…
func suppressedLoop(m map[int]int) {
	//gxlint:ordered touch is idempotent per key in this fixture
	for k := range m {
		touch(k)
	}
	// …and nothing else: the same shape right after is still flagged.
	for k := range m { // want `non-deterministic iteration over map m`
		touch(k)
	}
}

// A directive with no reason suppresses nothing.
func reasonlessDirective(m map[int]int) {
	//gxlint:ordered
	for k := range m { // want `non-deterministic iteration over map m`
		touch(k)
	}
}

type entry struct {
	dirty bool
	n     int
}

// Structured order-insensitive bodies: local declarations, nested
// loops with call-free conditions, writes through the loop-local
// range value, continue/break, and loop-independent returns.
func okStructured(m map[int]*entry, flags []bool) (int, bool) {
	hits := 0
	for id, e := range m {
		var bump int
		const width = 2
		bump = id % width
		e.dirty = false
		e.n += bump
		for i := 0; i < 3; i++ {
			hits += i
		}
		for j, f := range flags {
			if f {
				hits += j
				continue
			}
			break
		}
		if bump == 0 {
			return hits, true
		}
	}
	return hits, false
}

// A switch is not in the allowed loop vocabulary: proving every case
// order-insensitive is out of scope, so the loop is flagged.
func badSwitch(m map[int]int) int {
	n := 0
	for k := range m { // want `non-deterministic iteration over map m`
		switch k {
		case 0:
			n++
		}
	}
	return n
}

// A declaration initialized from a call may observe iteration order.
func badDeclCall(m map[int]int) {
	for k := range m { // want `non-deterministic iteration over map m`
		var v = pick(k)
		_ = v
	}
}

func pick(k int) int { return k }

// Goto leaves the body in iteration order.
func badGoto(m map[int]int) int {
	n := 0
	for range m { // want `non-deterministic iteration over map m`
		goto out
	}
out:
	return n
}

// A plain write to an outer scalar from a loop variable: the last
// entry visited wins.
func badLastWins(m map[int]int) int {
	last := 0
	for k := range m { // want `the last map entry visited wins this write`
		last = k
	}
	return last
}

// Same shape through a field chain on an outer struct.
func badFieldLastWins(m map[int]int, e *entry) {
	for k := range m { // want `the last map entry visited wins this write`
		e.n = k
	}
}

// Appending to one shared element accumulates in visit order.
func badSharedAppend(m map[int]int, buckets map[int][]int) {
	for k, v := range m { // want `appending to a shared element accumulates in map-iteration order`
		buckets[0] = append(buckets[0], k+v)
	}
}

// Integer accumulation into an indexed element is exactly commutative;
// float accumulation is not.
func mixedIndexed(m map[int]float64, ints []int64, floats []float64) {
	for k, v := range m {
		ints[k%len(ints)] += int64(v)
	}
	for k, v := range m { // want `accumulating a non-integer`
		floats[k%len(floats)] += v
	}
}
