// Package a exercises the directive analyzer: every //gxlint: comment
// must name a known check and carry a reason.
package a

func wellFormed(m map[int]int) []int {
	var keys []int
	//gxlint:ordered keys feed a set union whose order is never observed
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func missingReason() {
	_ = 0 /*gxlint:ordered*/   // want `gxlint:ordered directive needs a reason`
	_ = 1 /*gxlint:uncharged*/ // want `gxlint:uncharged directive needs a reason`
}

func unknownName() {
	_ = 2 /*gxlint:frobnicate because reasons*/ // want `unknown gxlint directive "frobnicate"`
}
