// Package consumer exercises the nilgate analyzer: every call of an
// engine.Observer value must be dominated by a nil check.
package consumer

import (
	"nilgate/internal/engine"
)

type config struct {
	Observer engine.Observer
	enabled  bool
}

type runner struct {
	cfg config
}

// Directly guarded calls are fine.
func guarded(obs engine.Observer, info engine.SuperstepInfo) {
	if obs != nil {
		obs(info)
	}
}

// An unguarded call is the regression the analyzer exists for.
func unguarded(obs engine.Observer, info engine.SuperstepInfo) {
	obs(info) // want `call of engine\.Observer obs is not nil-gated`
}

// An early return on nil dominates everything after it.
func earlyReturn(r *runner, info engine.SuperstepInfo) {
	if r.cfg.Observer == nil {
		return
	}
	r.cfg.Observer(info)
}

// A boolean flag assigned once from the comparison counts as a guard.
func flagGuard(r *runner, info engine.SuperstepInfo) {
	observing := r.cfg.Observer != nil
	if observing {
		r.cfg.Observer(info)
	}
}

// The else branch of an == nil check is the non-nil side.
func elseGuard(obs engine.Observer, info engine.SuperstepInfo) {
	if obs == nil {
		return
	} else {
		obs(info)
	}
}

// A conjunction guards if either conjunct is the nil check.
func conjunction(r *runner, info engine.SuperstepInfo) {
	if r.cfg.enabled && r.cfg.Observer != nil {
		r.cfg.Observer(info)
	}
}

// Guarding a different expression does not guard this one.
func wrongGuard(a, b engine.Observer, info engine.SuperstepInfo) {
	if a != nil {
		b(info) // want `call of engine\.Observer b is not nil-gated`
	}
}

// A reasoned directive suppresses exactly the annotated call…
func suppressed(obs engine.Observer, info engine.SuperstepInfo) {
	//gxlint:nilgated constructor rejects nil observers in this fixture
	obs(info)
	obs(info) // want `call of engine\.Observer obs is not nil-gated`
}

// …and a reasonless directive suppresses nothing.
func reasonless(obs engine.Observer, info engine.SuperstepInfo) {
	//gxlint:nilgated
	obs(info) // want `call of engine\.Observer obs is not nil-gated`
}
