// Package engine declares the Observer hook type at a path matching
// the real engine package, for the nilgate fixture.
package engine

// SuperstepInfo mirrors the real per-superstep report payload.
type SuperstepInfo struct {
	Superstep int
}

// Observer is the optional per-superstep hook; nil means not observing.
type Observer func(SuperstepInfo)
