// Package ingest is the wiresize fixture: make() sizes decoded from
// wire input must be bounds-checked first.
package ingest

import (
	"encoding/binary"
	"errors"
)

type header struct {
	NumVertices uint64
	NumEdges    uint64
}

// Unchecked wire-derived sizes are the lying-header bug.
func badDecode(buf []byte) []float64 {
	n := binary.LittleEndian.Uint64(buf)
	return make([]float64, int(n)) // want `allocation size n is not bounds-checked`
}

func badHeaderField(h header) []uint32 {
	return make([]uint32, 0, int(h.NumEdges)) // want `allocation size h\.NumEdges is not bounds-checked`
}

func badMap(h header) map[uint64]uint32 {
	return make(map[uint64]uint32, int(h.NumVertices)) // want `allocation size h\.NumVertices is not bounds-checked`
}

// A relational comparison against the verified input size upstream of
// the make is the bound check the analyzer looks for.
func okChecked(buf []byte, fileSize int64) ([]float64, error) {
	n := binary.LittleEndian.Uint64(buf)
	if int64(n) > fileSize/8 {
		return nil, errors.New("header claims more entries than the file holds")
	}
	return make([]float64, int(n)), nil
}

// Sizes derived from data already in memory are intrinsically bounded.
func okLen(buf []byte) []uint64 {
	return make([]uint64, len(buf)/8)
}

// min() against a bound is itself a bound check; constants are free.
func okMin(n uint64) ([]byte, []byte) {
	return make([]byte, min(int(n), 1<<16)), make([]byte, 28)
}

// A reasoned directive suppresses exactly the annotated make…
func suppressed(h header) ([]uint32, []uint32) {
	//gxlint:unsized chunked reads below never trust this count
	a := make([]uint32, int(h.NumEdges))
	b := make([]uint32, int(h.NumEdges)) // want `allocation size h\.NumEdges is not bounds-checked`
	return a, b
}

// …and a reasonless directive suppresses nothing.
func reasonless(h header) []uint32 {
	//gxlint:unsized
	return make([]uint32, int(h.NumVertices)) // want `allocation size h\.NumVertices is not bounds-checked`
}
