package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"gxplug/internal/lint/analysis"
)

// fileName returns the source file name of f.
func fileName(pass *analysis.Pass, f *ast.File) string {
	return pass.Fset.Position(f.Pos()).Filename
}

// inspectWithStack walks the file like ast.Inspect while maintaining
// the ancestor stack (outermost first, excluding n itself).
func inspectWithStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// calleeObj resolves the object a call expression invokes, looking
// through parentheses. It returns nil for indirect calls through
// non-identifier expressions and for type conversions.
func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

// isPkgLevelCall reports whether call invokes the package-level
// function pkgPath.name (not a method).
func isPkgLevelCall(pass *analysis.Pass, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObj(pass, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isConversion reports whether call is a type conversion.
func isConversion(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	return ok && tv.IsType()
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(pass *analysis.Pass, call *ast.CallExpr) string {
	if obj := calleeObj(pass, call); obj != nil {
		if b, ok := obj.(*types.Builtin); ok {
			return b.Name()
		}
	}
	return ""
}

// callFree reports whether evaluating e performs no function or method
// call: conversions and the pure builtins len/cap/min/max are allowed.
func callFree(pass *analysis.Pass, e ast.Expr) bool {
	free := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return free
		}
		if isConversion(pass, call) {
			return free
		}
		switch builtinName(pass, call) {
		case "len", "cap", "min", "max":
			return free
		}
		free = false
		return false
	})
	return free
}

// refersTo reports whether e mentions any of the given objects.
func refersTo(pass *analysis.Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// intLike reports whether t's underlying type is an integer (including
// named types like time.Duration), for which accumulation is exactly
// commutative and therefore iteration-order-independent.
func intLike(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

// terminates reports whether the statement list unconditionally leaves
// the enclosing scope: ends in return, branch, or a panic call.
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// enclosingFunc returns the innermost function declaration or literal
// on the stack, and its body.
func enclosingFunc(stack []ast.Node) (ast.Node, *ast.BlockStmt) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn, fn.Body
		case *ast.FuncLit:
			return fn, fn.Body
		}
	}
	return nil, nil
}

// posAfter reports whether pos lies strictly after node n.
func posAfter(pos token.Pos, n ast.Node) bool {
	return pos > n.End()
}
