package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"gxplug/internal/lint/analysis"
)

// WireSizeAnalyzer hardens the decode paths (snapshot loading,
// edge-list ingestion, shared-memory codecs) against the lying-header
// class of bugs: a length field read from wire input must never reach
// make() unchecked, or a corrupt 28-byte header can demand a
// multi-gigabyte allocation before any payload is validated.
//
// The rule: every non-constant size argument of make() in a decode
// package must be derived from expressions that are either constants,
// len/cap of in-memory data, or values that appear in a relational
// comparison (a bound check) earlier in the same function. Anything
// else — a struct field, a parameter, a freshly decoded integer — is
// assumed to be attacker-controlled until compared against something.
//
// Suppress with //gxlint:unsized <reason> when the bound is enforced
// elsewhere (e.g. chunked reads that never trust the size).
var WireSizeAnalyzer = &analysis.Analyzer{
	Name: "wiresize",
	Doc:  "flag make() whose size derives from decoded wire input without a prior bound check",
	Run:  runWireSize,
}

func runWireSize(pass *analysis.Pass) error {
	if !pkgMatch(pass.Path, wireSizeTargets) {
		return nil
	}
	dirs := indexDirectives(pass)
	for _, f := range pass.Files {
		if isTestFile(fileName(pass, f)) {
			continue
		}
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || builtinName(pass, call) != "make" || len(call.Args) < 2 {
				return true
			}
			_, body := enclosingFunc(stack)
			for _, size := range call.Args[1:] {
				if expr := unsizedPart(pass, body, call, size); expr != nil {
					if !dirs.suppressed("unsized", call.Pos()) {
						pass.Reportf(call.Pos(), "allocation size %s is not bounds-checked before make: compare it against the verified input size first, or a lying header can force the allocation (//gxlint:unsized <reason> to suppress)",
							types.ExprString(expr))
					}
					break
				}
			}
			return true
		})
	}
	return nil
}

// unsizedPart returns the first sub-expression of size that is neither
// intrinsically bounded nor bound-checked before the make call, or nil
// if the whole expression is accounted for.
func unsizedPart(pass *analysis.Pass, body *ast.BlockStmt, call *ast.CallExpr, size ast.Expr) ast.Expr {
	size = ast.Unparen(size)
	// Constants are fine, whatever their shape.
	if tv, ok := pass.TypesInfo.Types[size]; ok && tv.Value != nil {
		return nil
	}
	switch e := size.(type) {
	case *ast.BinaryExpr:
		if p := unsizedPart(pass, body, call, e.X); p != nil {
			return p
		}
		return unsizedPart(pass, body, call, e.Y)
	case *ast.UnaryExpr:
		return unsizedPart(pass, body, call, e.X)
	case *ast.CallExpr:
		switch builtinName(pass, e) {
		case "len", "cap":
			return nil // bounded by data already in memory
		case "min":
			// min(wire, bound) is itself a bound check.
			return nil
		}
		if isConversion(pass, e) && len(e.Args) == 1 {
			return unsizedPart(pass, body, call, e.Args[0])
		}
		return e // opaque call result: not provably bounded
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		if body != nil && checkedBefore(pass, body, call, types.ExprString(size)) {
			return nil
		}
		return size
	}
	return size
}

// checkedBefore reports whether an expression structurally equal to
// want participates in a relational comparison before the make call in
// the same function body — the syntactic shape of a bound check.
func checkedBefore(pass *analysis.Pass, body *ast.BlockStmt, call *ast.CallExpr, want string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Pos() >= call.Pos() {
			return true
		}
		switch b.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		if coreString(pass, b.X) == want || coreString(pass, b.Y) == want {
			found = true
		}
		return !found
	})
	return found
}

// coreString renders an expression with parentheses, unary operators,
// and conversions stripped, so `int64(n) > max` counts as a check of n.
func coreString(pass *analysis.Pass, e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			if isConversion(pass, x) && len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
			return types.ExprString(e)
		default:
			return types.ExprString(e)
		}
	}
}
