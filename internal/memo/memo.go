// Package memo provides the concurrency-safe single-flight memoization
// table behind the repository's dataset and partition caches. It exists
// so the caches share one implementation of the lock/lookup/once dance
// — and one definition of its accounting — instead of three.
package memo

import "sync"

// Table memoizes values by key. Builds are single-flight: when several
// goroutines ask for the same missing key at once, one builds while the
// rest block on the same entry, then all receive the identical value.
// Values are built at most once per key and retained until Purge, so V
// should be immutable (or an immutable result wrapper).
type Table[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*entry[V]
	hits    int64
}

type entry[V any] struct {
	once sync.Once
	v    V
}

// Stats snapshots a table's activity.
type Stats struct {
	// Hits counts Get calls that found an existing entry — including
	// callers that blocked on a build still in flight.
	Hits int64
	// Entries counts distinct keys ever requested (== builds invoked).
	Entries int64
}

// NewTable returns an empty table.
func NewTable[K comparable, V any]() *Table[K, V] {
	return &Table[K, V]{entries: make(map[K]*entry[V])}
}

// Get returns the memoized value for key, invoking build on first
// request. Safe for concurrent use; build runs without the table lock
// held, so builds for distinct keys proceed in parallel.
func (t *Table[K, V]) Get(key K, build func() V) V {
	t.mu.Lock()
	e, ok := t.entries[key]
	if !ok {
		e = &entry[V]{}
		t.entries[key] = e
	} else {
		t.hits++
	}
	t.mu.Unlock()
	e.once.Do(func() { e.v = build() })
	return e.v
}

// Drop removes one key so the next Get rebuilds it. Callers use it to
// keep transient failures from being memoized forever: a Get whose
// result turns out to be an error can Drop the key and still return
// that error, giving every in-flight waiter the failed attempt's result
// while later requests retry. Dropping a key that is absent (or already
// dropped by a concurrent waiter) is a no-op. A dropped key leaves the
// entry count, so Stats.Entries reads as "keys currently memoized" once
// Drop is in play.
func (t *Table[K, V]) Drop(key K) {
	t.mu.Lock()
	delete(t.entries, key)
	t.mu.Unlock()
}

// Stats returns a snapshot of the table counters.
func (t *Table[K, V]) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{Hits: t.hits, Entries: int64(len(t.entries))}
}

// Purge drops every entry and zeroes the counters.
func (t *Table[K, V]) Purge() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = make(map[K]*entry[V])
	t.hits = 0
}
