package memo

import (
	"sync"
	"sync/atomic"
	"testing"
)

// One build per key; repeats hit; Purge resets.
func TestTableMemoizes(t *testing.T) {
	tab := NewTable[int, string]()
	var builds atomic.Int64
	get := func(k int) string {
		return tab.Get(k, func() string {
			builds.Add(1)
			return "v"
		})
	}
	if get(1) != "v" || get(1) != "v" || get(2) != "v" {
		t.Fatal("wrong values")
	}
	if builds.Load() != 2 {
		t.Fatalf("%d builds, want 2", builds.Load())
	}
	if st := tab.Stats(); st.Entries != 2 || st.Hits != 1 {
		t.Fatalf("stats %+v", st)
	}
	tab.Purge()
	if st := tab.Stats(); st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("purge left %+v", st)
	}
	get(1)
	if builds.Load() != 3 {
		t.Fatal("purged entry not rebuilt")
	}
}

// Concurrent first requests for one key run the build exactly once and
// all receive the identical value.
func TestTableSingleFlight(t *testing.T) {
	tab := NewTable[string, *int]()
	var builds atomic.Int64
	const callers = 16
	got := make([]*int, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = tab.Get("k", func() *int {
				builds.Add(1)
				v := 7
				return &v
			})
		}(i)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("%d builds under contention", builds.Load())
	}
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d got a different instance", i)
		}
	}
	if st := tab.Stats(); st.Hits != callers-1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDropAllowsRebuild(t *testing.T) {
	tbl := NewTable[string, int]()
	builds := 0
	build := func() int { builds++; return builds }
	if got := tbl.Get("k", build); got != 1 {
		t.Fatalf("first Get = %d, want 1", got)
	}
	if got := tbl.Get("k", build); got != 1 {
		t.Fatalf("memoized Get = %d, want 1 (no rebuild)", got)
	}
	tbl.Drop("k")
	if got := tbl.Get("k", build); got != 2 {
		t.Fatalf("Get after Drop = %d, want rebuild (2)", got)
	}
	tbl.Drop("absent") // no-op
	if st := tbl.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}
