package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client timeouts. Bounded calls (submit, status, result without wait)
// answer from in-memory state and must fail fast against a dead or
// wedged daemon instead of hanging gxrun -remote forever; open-ended
// calls (stream, result?wait=1) legitimately block for a job's whole
// runtime, so they bound only the TCP connect.
const (
	clientTimeout     = 30 * time.Second
	clientDialTimeout = 10 * time.Second
)

// Client is the thin HTTP client behind `gxrun -remote` and the tests:
// submit a scenario/suite body, follow its event stream, fetch its
// result. The zero value is not usable; call NewClient.
type Client struct {
	base string
	// short bounds whole requests that answer from in-memory state;
	// long bounds only the connect, for requests that follow a job.
	short *http.Client
	long  *http.Client
}

// NewClient returns a client for a gxd daemon at addr. A bare
// "host:port" gets the http scheme; a full URL is used as given.
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	dial := (&net.Dialer{Timeout: clientDialTimeout}).DialContext
	return &Client{
		base:  strings.TrimRight(addr, "/"),
		short: &http.Client{Timeout: clientTimeout, Transport: &http.Transport{DialContext: dial}},
		long:  &http.Client{Transport: &http.Transport{DialContext: dial}},
	}
}

// Submit posts a raw scenario or suite JSON body and returns the
// admitted job's id. Rejections (queue full, draining, invalid input)
// come back as errors carrying the daemon's message.
func (c *Client) Submit(body []byte) (SubmitReply, error) {
	resp, err := c.short.Post(c.base+"/v1/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		return SubmitReply{}, fmt.Errorf("serve: submit: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return SubmitReply{}, statusError("submit", resp)
	}
	var reply SubmitReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return SubmitReply{}, fmt.Errorf("serve: submit reply: %w", err)
	}
	return reply, nil
}

// Stream follows a job's NDJSON event stream from the beginning,
// invoking fn for every event until the terminal "done" event (after
// which it returns nil) or fn returns an error (propagated).
func (c *Client) Stream(id string, fn func(Event) error) error {
	resp, err := c.long.Get(c.base + "/v1/stream?id=" + url.QueryEscape(id))
	if err != nil {
		return fmt.Errorf("serve: stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError("stream", resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("serve: stream event: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
		if ev.Type == "done" {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("serve: stream: %w", err)
	}
	return fmt.Errorf("serve: stream ended without a done event")
}

// Result fetches a job's outcome, blocking server-side until the job
// finishes when wait is true.
func (c *Client) Result(id string, wait bool) (JobResult, error) {
	u := c.base + "/v1/result?id=" + url.QueryEscape(id)
	h := c.short
	if wait {
		// The server blocks until the job finishes; an overall timeout
		// would sever legitimate long waits.
		h = c.long
		u += "&wait=1"
	}
	resp, err := h.Get(u)
	if err != nil {
		return JobResult{}, fmt.Errorf("serve: result: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobResult{}, statusError("result", resp)
	}
	var jr JobResult
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		return JobResult{}, fmt.Errorf("serve: result: %w", err)
	}
	return jr, nil
}

// Status fetches a job's progress snapshot.
func (c *Client) Status(id string) (Status, error) {
	resp, err := c.short.Get(c.base + "/v1/status?id=" + url.QueryEscape(id))
	if err != nil {
		return Status{}, fmt.Errorf("serve: status: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Status{}, statusError("status", resp)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Status{}, fmt.Errorf("serve: status: %w", err)
	}
	return st, nil
}

// statusError turns a non-2xx response into an error carrying the
// daemon's message body.
func statusError(op string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	return fmt.Errorf("serve: %s: %s: %s", op, resp.Status, strings.TrimSpace(string(msg)))
}
