package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"gxplug/gx"
)

// TestStreamDoneRace is the regression test for the done-event race:
// completion used to set state = done and append the terminal "done"
// event in two separate critical sections, so a stream follower waking
// between them saw a done job with a drained history and returned
// without the done event — Client.Stream then failed with "stream ended
// without a done event". Completion is now atomic; this hammers
// stream-at-completion to keep it that way. The pre-fix split reproduces
// under GOMAXPROCS > 1 with the race detector's instrumentation widening
// the window — the Makefile's race-serve target runs exactly that
// configuration.
func TestStreamDoneRace(t *testing.T) {
	srv, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Drain)

	// The hammer drives handleStream and runJob in-process — no HTTP in
	// between. Each job gets stream followers (the end-to-end surface the
	// bug broke) plus a spinning observer that re-acquires j.mu in a
	// tight loop: the observer's acquisitions land inside the ~100ns
	// window between a split "state = done" section and the done-event
	// append, which is exactly what a stream connecting at completion
	// does — a cond-parked follower is immune, since only the event
	// append broadcasts. The observed invariant is the one handleStream
	// relies on: any lock hold that sees state done must also see the
	// done event. The suite is empty, so RunSuite fails instantly and
	// completion dominates each job's lifetime; 2000 jobs give the
	// observer thousands of in-window acquisition chances per run.
	const jobs, followers = 2000, 2
	for i := 0; i < jobs; i++ {
		j := &job{id: fmt.Sprintf("race-%d", i), state: StateQueued}
		j.cond = sync.NewCond(&j.mu)
		srv.mu.Lock()
		srv.jobs[j.id] = j
		srv.mu.Unlock()

		var wg sync.WaitGroup
		bodies := make([]string, followers)
		for f := 0; f < followers; f++ {
			wg.Add(1)
			go func(f int) {
				defer wg.Done()
				rec := httptest.NewRecorder()
				req := httptest.NewRequest(http.MethodGet, "/v1/stream?id="+j.id, nil)
				srv.ServeHTTP(rec, req)
				bodies[f] = rec.Body.String()
			}(f)
		}
		torn := make(chan bool, 1)
		go func() {
			for {
				j.mu.Lock()
				if j.state == StateDone {
					ok := len(j.events) > 0 && j.events[len(j.events)-1].Type == "done"
					j.mu.Unlock()
					torn <- !ok
					return
				}
				j.mu.Unlock()
			}
		}()
		srv.runJob(j)
		if <-torn {
			t.Fatalf("job %d: state done observed without the done event in the history", i)
		}
		wg.Wait()
		for f, body := range bodies {
			if !strings.Contains(body, `"type":"done"`) {
				t.Fatalf("job %d follower %d: stream ended without a done event:\n%q", i, f, body)
			}
		}
	}
}

// TestStreamClientDisconnect: a follower abandoning the stream of a job
// that never finishes must release its handler goroutine instead of
// parking on the job's cond forever.
func TestStreamClientDisconnect(t *testing.T) {
	srv, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Drain)

	// A job pinned in running state: no events will ever arrive and no
	// done transition will ever wake the stream.
	stuck := &job{id: "job-stuck", state: StateRunning}
	stuck.cond = sync.NewCond(&stuck.mu)
	srv.mu.Lock()
	srv.jobs[stuck.id] = stuck
	srv.mu.Unlock()

	for _, target := range []string{"/v1/stream?id=job-stuck", "/v1/result?id=job-stuck&wait=1"} {
		ctx, cancel := context.WithCancel(context.Background())
		req := httptest.NewRequest(http.MethodGet, target, nil).WithContext(ctx)
		done := make(chan struct{})
		go func() {
			srv.ServeHTTP(httptest.NewRecorder(), req)
			close(done)
		}()
		// Let the handler reach its wait, then hang up.
		time.Sleep(20 * time.Millisecond)
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: handler still parked after client disconnect", target)
		}
	}
}

// TestServeRetention: finished jobs past the retention bound are evicted
// oldest-first — their ids 404 — while healthz reports resident vs
// evicted counts. Histories of resident jobs still replay in full.
func TestServeRetention(t *testing.T) {
	_, client := startServer(t, Options{Retention: 2})

	var ids []string
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"engine": "graphx", "algorithm": "cc", "dataset": "orkut", "scale": 2000, "seed": %d, "nodes": 1}`, i+1)
		reply, err := client.Submit([]byte(body))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.Result(reply.ID, true); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, reply.ID)
	}

	for _, id := range ids[:2] {
		if _, err := client.Status(id); err == nil || !strings.Contains(err.Error(), "404") {
			t.Errorf("evicted job %s still resident: %v", id, err)
		}
	}
	for _, id := range ids[2:] {
		sawDone := false
		if err := client.Stream(id, func(ev Event) error {
			if ev.Type == "done" {
				sawDone = true
			}
			return nil
		}); err != nil || !sawDone {
			t.Errorf("resident job %s replay: done=%v err=%v", id, sawDone, err)
		}
	}

	resp, err := http.Get(client.base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Jobs != 2 || h.Evicted != 2 {
		t.Fatalf("health %+v, want 2 resident / 2 evicted", h)
	}
}

// TestClientBoundedCalls: submit/status against a daemon that accepts
// connections but never answers fail within the short client's timeout
// instead of hanging gxrun -remote forever.
func TestClientBoundedCalls(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold open, never respond
		}
	}()

	c := NewClient(ln.Addr().String())
	c.short.Timeout = 100 * time.Millisecond

	start := time.Now()
	if _, err := c.Submit([]byte(`{}`)); err == nil {
		t.Fatal("submit against a wedged daemon succeeded")
	}
	if _, err := c.Status("job-1"); err == nil {
		t.Fatal("status against a wedged daemon succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("bounded calls took %v", elapsed)
	}
}

// TestServeCostAdmission: with an admission budget configured, a
// submission whose predicted serial cost exceeds it is rejected with 422
// and a CostReject body carrying the per-entry estimates; cheap
// submissions still admit, and a generous budget admits everything.
func TestServeCostAdmission(t *testing.T) {
	// Any real suite prices above one nanosecond.
	_, client := startServer(t, Options{Budget: 1})

	resp, err := http.Post(client.base+"/v1/submit", "application/json", strings.NewReader(suiteBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("over-budget submission: HTTP %d", resp.StatusCode)
	}
	var rej CostReject
	if err := json.NewDecoder(resp.Body).Decode(&rej); err != nil {
		t.Fatal(err)
	}
	if rej.Predicted <= rej.Budget || rej.Budget != 1 || len(rej.Entries) != 2 {
		t.Fatalf("reject body %+v", rej)
	}
	if !strings.Contains(rej.Error, "exceeds budget") {
		t.Fatalf("reject error %q", rej.Error)
	}
	for _, ee := range rej.Entries {
		if ee.Makespan <= 0 || ee.Err != "" {
			t.Fatalf("entry estimate %+v", ee)
		}
	}

	// The client surfaces the rejection as a 422 error too.
	if _, err := client.Submit([]byte(suiteBody)); err == nil || !strings.Contains(err.Error(), "422") {
		t.Fatalf("client submit over budget: %v", err)
	}

	// A generous budget admits and the job runs to completion.
	_, generous := startServer(t, Options{Budget: 24 * time.Hour})
	reply, err := generous.Submit([]byte(suiteBody))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := generous.Result(reply.ID, true); err != nil || res.Failed != 0 {
		t.Fatalf("admitted job: res=%+v err=%v", res, err)
	}
}

// TestServeLPTPlan: a daemon dispatching under LPT returns entry reports
// bit-identical to the default file-order daemon — the plan never leaks
// into results.
func TestServeLPTPlan(t *testing.T) {
	_, fileOrder := startServer(t, Options{Pool: 2})
	_, lpt := startServer(t, Options{Pool: 2, Plan: gx.LPT})

	run := func(c *Client) JobResult {
		reply, err := c.Submit([]byte(suiteBody))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Result(reply.ID, true)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(fileOrder), run(lpt)
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		if !reflect.DeepEqual(a.Entries[i].Summary, b.Entries[i].Summary) {
			t.Fatalf("entry %q summary differs under LPT:\n%+v\n%+v",
				a.Entries[i].Name, a.Entries[i].Summary, b.Entries[i].Summary)
		}
	}
}

// TestServeOptionValidation pins the new option error paths.
func TestServeOptionValidation(t *testing.T) {
	if _, err := New(Options{Retention: -1}); err == nil {
		t.Error("negative retention accepted")
	}
	if _, err := New(Options{Budget: -time.Second}); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := New(Options{Plan: "random"}); err == nil {
		t.Error("unknown plan accepted")
	}
}
