// Package serve is the gxd serving layer: an HTTP/JSON front end over
// the gx execution core. The wire format is the one the repository
// already had — scenarios and suites round-trip through JSON — plus
// small envelope types defined here, shared by the server, the thin
// client (gxrun -remote), and the tests.
//
// Endpoints (all under /v1):
//
//	POST /v1/submit   scenario or suite JSON body → SubmitReply (202);
//	                  429 when the admission queue is full, 503 when
//	                  draining, 400/422 on malformed or invalid input,
//	                  and 422 with a CostReject body when a configured
//	                  admission budget prices the submission out.
//	GET  /v1/status   ?id=JOB → Status.
//	GET  /v1/result   ?id=JOB[&wait=1] → JobResult; without wait, 409
//	                  until the job is done.
//	GET  /v1/stream   ?id=JOB → NDJSON Event stream: the job's full
//	                  event history from the beginning, then live
//	                  events until the terminal "done" event.
//	GET  /v1/healthz  → Health.
//
// Determinism note: everything in this package that feeds results is
// wall-clock-free — job outcomes come from the gx executor, whose
// times are virtual. The package is inside the gxlint determinism
// analyzer's scope to keep it that way.
package serve

import (
	"time"

	"gxplug/gx"
)

// SubmitReply acknowledges an admitted submission.
type SubmitReply struct {
	// ID names the job in every other endpoint.
	ID string `json:"id"`
	// State is the job's admission state, always "queued" on submit.
	State string `json:"state"`
}

// Job states reported by Status.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
)

// Status is one job's progress snapshot.
type Status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Supersteps counts engine supersteps executed for this job so far
	// — zero for a job served entirely from the result cache.
	Supersteps int64 `json:"supersteps"`
	// Entries and EntriesDone size the job and its progress.
	Entries     int `json:"entries"`
	EntriesDone int `json:"entries_done"`
}

// EntryReport is the wire form of one finished suite entry: the
// defaults-applied scenario plus the result summary (attrs digest,
// totals, virtual makespan). It is everything a client needs to render
// gxrun's per-entry report byte-identically, and it is what a
// result-cache hit serves without recomputation.
type EntryReport struct {
	Name     string           `json:"name"`
	Scenario gx.Scenario      `json:"scenario"`
	Summary  gx.ResultSummary `json:"summary"`
	// CacheHit marks an entry served from the daemon's result cache
	// with zero engine supersteps.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Err and Class report a failed entry (empty on success).
	Err   string `json:"error,omitempty"`
	Class string `json:"class,omitempty"`
}

// ReportOf converts an executor entry result to its wire form.
func ReportOf(er gx.EntryResult) EntryReport {
	rep := EntryReport{
		Name:     er.Name,
		Scenario: er.Scenario,
		Summary:  er.Summary,
		CacheHit: er.CacheHit,
		Class:    er.Class,
	}
	if er.Err != nil {
		rep.Err = er.Err.Error()
	}
	return rep
}

// JobResult is a finished job's full outcome.
type JobResult struct {
	ID string `json:"id"`
	// Suite is the submitted suite's name ("" when unnamed).
	Suite string `json:"suite,omitempty"`
	// Entries holds one report per entry, in suite order.
	Entries []EntryReport `json:"entries"`
	// Failed counts entries that ended in error.
	Failed int `json:"failed"`
	// Supersteps counts engine supersteps this job executed (zero when
	// every entry hit the result cache).
	Supersteps int64 `json:"supersteps"`
	// Cache snapshots the process-wide dataset/partition cache, and
	// Results the process-wide result cache, as of job completion.
	Cache   gx.CacheStats       `json:"cache"`
	Results gx.ResultCacheStats `json:"results"`
}

// Event is one NDJSON stream record. Type selects which payload field
// is set: "superstep" (Entry + Superstep), "entry" (Report), "done"
// (Result, always the final event).
type Event struct {
	Type      string        `json:"type"`
	Entry     string        `json:"entry,omitempty"`
	Superstep *gx.Superstep `json:"superstep,omitempty"`
	Report    *EntryReport  `json:"report,omitempty"`
	Result    *JobResult    `json:"result,omitempty"`
}

// Health is the healthz payload: liveness plus the process-wide cache
// counters a load balancer or test wants to see.
type Health struct {
	OK   bool `json:"ok"`
	Jobs int  `json:"jobs"`
	// Evicted counts finished jobs released by the retention bound over
	// the server's lifetime; Jobs counts the resident remainder.
	Evicted int                 `json:"evicted"`
	Cache   gx.CacheStats       `json:"cache"`
	Results gx.ResultCacheStats `json:"results"`
	// Planner counts the scenario keys with recorded actual makespans in
	// the planner history (0 when the server runs without a planner).
	Planner int `json:"planner"`
}

// CostReject is the 422 body of a submission priced out by the admission
// budget: the planner's per-entry estimates and the predicted serial
// virtual cost that exceeded the configured ceiling. The client can
// split the suite, shrink the scenarios, or resubmit elsewhere.
type CostReject struct {
	Error string `json:"error"`
	// Predicted is the summed predicted virtual makespan of all entries.
	Predicted time.Duration `json:"predicted"`
	// Budget is the server's configured admission ceiling.
	Budget time.Duration `json:"budget"`
	// Entries holds the planner's per-entry estimates, in suite order.
	Entries []gx.EntryEstimate `json:"entries"`
}
