package serve

import (
	"fmt"
	"io"

	"gxplug/gx"
)

// This file renders suite reports from wire-form entry reports. It is
// the single implementation behind `gxrun -suite` (local results
// converted via [ReportOf]) and `gxrun -remote` (reports straight off
// the stream), which is what makes a remote run's output byte-identical
// to a local one: both feed the same summaries through the same
// formatting. The gxd end-to-end test leans on exactly that, comparing
// a streamed remote report against the gxrun golden fixture.

// RenderEntry prints one streamed suite-entry report, i of n.
func RenderEntry(w io.Writer, i, n int, rep EntryReport) {
	s := rep.Scenario
	fmt.Fprintf(w, "[%d/%d] %s: %s on %s/%s over %d nodes, accel=%s\n",
		i, n, rep.Name, s.Algorithm, s.Dataset, s.Engine, s.Nodes, s.Accel)
	if rep.Err != "" {
		fmt.Fprintf(w, "  error (%s) : %v\n", rep.Class, rep.Err)
		return
	}
	sum := rep.Summary
	tot := sum.Totals
	fmt.Fprintf(w, "  time        : %v\n", sum.Time)
	fmt.Fprintf(w, "  supersteps  : %d (%d syncs skipped)\n", sum.Iterations, sum.SkippedSyncs)
	fmt.Fprintf(w, "  messages    : %d (%d bytes)\n", tot.Messages, tot.MessageBytes)
	if tot.CacheHits+tot.CacheMisses > 0 {
		fmt.Fprintf(w, "  cache       : %.0f%% hit rate, %d evictions (%d dirty spills)\n",
			100*float64(tot.CacheHits)/float64(tot.CacheHits+tot.CacheMisses),
			tot.CacheEvictions, tot.CacheDirtySpills)
	}
	if tot.FaultsInjected > 0 {
		fmt.Fprintf(w, "  faults      : %d injected, %d stall retries absorbed\n",
			tot.FaultsInjected, tot.FaultRetries)
	}
	fmt.Fprintf(w, "  result      : %d finite attribute values, sum %.4f\n", sum.FiniteAttrs, sum.AttrsSum)
}

// RenderSuiteSummary prints the closing table and cache accounting.
func RenderSuiteSummary(w io.Writer, entries []EntryReport, cache gx.CacheStats) {
	fmt.Fprintf(w, "%-16s%-12s%-12s%-14s%-14s%-7s%s\n",
		"entry", "engine", "algorithm", "dataset", "time", "iters", "result-sum")
	for _, rep := range entries {
		if rep.Err != "" {
			fmt.Fprintf(w, "%-16s%-12s%-12s%-14serror: %v\n",
				rep.Name, rep.Scenario.Engine, rep.Scenario.Algorithm, rep.Scenario.Dataset, rep.Err)
			continue
		}
		fmt.Fprintf(w, "%-16s%-12s%-12s%-14s%-14s%-7d%.4f\n",
			rep.Name, rep.Scenario.Engine, rep.Scenario.Algorithm, rep.Scenario.Dataset,
			fmt.Sprintf("%.4fs", rep.Summary.Time.Seconds()), rep.Summary.Iterations, rep.Summary.AttrsSum)
	}
	fmt.Fprintf(w, "dataset cache: %d graphs loaded (%d hits), %d partitionings built (%d hits)\n",
		cache.GraphLoads, cache.GraphHits, cache.PartitionBuilds, cache.PartitionHits)
}
