package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	"gxplug/gx"
)

// suiteBody is a small two-entry suite used across the tests.
const suiteBody = `{
  "name": "serve-test",
  "entries": [
    {"name": "pr", "engine": "powergraph", "algorithm": "pagerank",
     "dataset": "orkut", "scale": 20000, "seed": 42, "nodes": 2,
     "accel": "gpu", "maxiter": 5},
    {"name": "cc", "engine": "graphx", "algorithm": "cc",
     "dataset": "orkut", "scale": 20000, "seed": 42, "nodes": 2}
  ]
}`

func startServer(t *testing.T, opts Options) (*Server, *Client) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() { srv.Drain(); hs.Close() })
	return srv, NewClient(hs.URL)
}

// TestServeEndToEnd drives the whole protocol over loopback HTTP:
// submit, stream, result, status, healthz — then resubmits the same
// suite and proves the second job runs zero engine supersteps and
// returns summaries identical to the first.
func TestServeEndToEnd(t *testing.T) {
	_, client := startServer(t, Options{Pool: 2})

	reply, err := client.Submit([]byte(suiteBody))
	if err != nil {
		t.Fatal(err)
	}
	if reply.ID == "" || reply.State != StateQueued {
		t.Fatalf("reply %+v", reply)
	}

	var supersteps, entries int
	var done *JobResult
	if err := client.Stream(reply.ID, func(ev Event) error {
		switch ev.Type {
		case "superstep":
			supersteps++
		case "entry":
			entries++
		case "done":
			done = ev.Result
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if supersteps == 0 || entries != 2 || done == nil {
		t.Fatalf("stream: %d supersteps, %d entries, done=%v", supersteps, entries, done != nil)
	}
	if done.Failed != 0 || done.Supersteps != int64(supersteps) || len(done.Entries) != 2 {
		t.Fatalf("done: %+v", done)
	}
	if done.Suite != "serve-test" {
		t.Fatalf("suite name %q", done.Suite)
	}

	res, err := client.Result(reply.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.Status(reply.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.EntriesDone != 2 {
		t.Fatalf("status %+v", st)
	}

	// Resubmit: every entry must come from the result cache — zero
	// engine supersteps for the whole job — with identical summaries.
	reply2, err := client.Submit([]byte(suiteBody))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := client.Result(reply2.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Supersteps != 0 {
		t.Fatalf("resubmission executed %d supersteps, want 0", res2.Supersteps)
	}
	for i, rep := range res2.Entries {
		if !rep.CacheHit {
			t.Fatalf("%s: not served from result cache", rep.Name)
		}
		if !reflect.DeepEqual(rep.Summary, res.Entries[i].Summary) {
			t.Fatalf("%s: served summary differs:\n%+v\n%+v", rep.Name, rep.Summary, res.Entries[i].Summary)
		}
	}
	if res2.Results.Hits < 2 {
		t.Fatalf("result cache stats %+v", res2.Results)
	}

	// A replayed stream of the cached job has entry events but no
	// superstep events.
	replayed := 0
	if err := client.Stream(reply2.ID, func(ev Event) error {
		if ev.Type == "superstep" {
			replayed++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("cached job streamed %d superstep events", replayed)
	}

	// Field-order and default respelling still hits: the key is the
	// canonical digest, not the submitted bytes.
	respelled := `{"entries": [
	  {"maxiter": 5, "accel": "gpu", "nodes": 2, "seed": 42, "scale": 20000,
	   "dataset": "orkut", "algorithm": "pagerank", "engine": "powergraph",
	   "name": "pr", "network": "datacenter", "gpus": 1}]}`
	reply3, err := client.Submit([]byte(respelled))
	if err != nil {
		t.Fatal(err)
	}
	res3, err := client.Result(reply3.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Supersteps != 0 || !res3.Entries[0].CacheHit {
		t.Fatalf("respelled submission missed: %+v", res3)
	}
	if res3.Entries[0].Summary.AttrsDigest != res.Entries[0].Summary.AttrsDigest {
		t.Fatal("respelled submission served a different result")
	}
}

// TestServeScenarioSubmission wraps a bare scenario as a one-entry suite.
func TestServeScenarioSubmission(t *testing.T) {
	_, client := startServer(t, Options{})
	body := `{"engine": "graphx", "algorithm": "cc", "dataset": "orkut", "scale": 20000, "nodes": 1}`
	reply, err := client.Submit([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Result(reply.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || res.Entries[0].Name != "scenario" || res.Failed != 0 {
		t.Fatalf("result %+v", res)
	}
}

// TestServeRejections pins the HTTP error contract: malformed bodies,
// invalid scenarios, unknown jobs, wrong methods, not-done results.
func TestServeRejections(t *testing.T) {
	_, client := startServer(t, Options{})

	for name, tc := range map[string]struct {
		body string
		code string
	}{
		"not json":        {"{", "400"},
		"empty suite":     {`{"entries": []}`, "400"},
		"unknown engine":  {`{"engine": "giraph", "algorithm": "pagerank", "dataset": "orkut", "nodes": 1}`, "422"},
		"unknown dataset": {`{"engine": "graphx", "algorithm": "pagerank", "dataset": "nope", "nodes": 1}`, "422"},
	} {
		_, err := client.Submit([]byte(tc.body))
		if err == nil || !strings.Contains(err.Error(), tc.code) {
			t.Errorf("%s: err %v, want HTTP %s", name, err, tc.code)
		}
	}

	if _, err := client.Status("job-999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job status: %v", err)
	}
	if _, err := client.Result("job-999", false); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown job result: %v", err)
	}

	resp, err := http.Get(client.base + "/v1/submit")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET submit: %d", resp.StatusCode)
	}
}

// TestServeQueueBound fills the admission queue behind a busy worker and
// expects 429, not unbounded buffering. The worker is held deterministically
// — it blocks on a gate job's mutex inside runJob until the test releases
// it — so the test never races real submissions against job runtime.
func TestServeQueueBound(t *testing.T) {
	srv, client := startServer(t, Options{Pool: 1, QueueDepth: 1})

	// The worker's first action on a job is setState, which takes j.mu;
	// holding it pins the worker inside runJob for as long as we like.
	gate := &job{id: "gate", state: StateQueued}
	gate.cond = sync.NewCond(&gate.mu)
	gate.mu.Lock()
	srv.queue <- gate
	defer gate.mu.Unlock() // release before Drain in cleanup

	// Depth 1 and a pinned worker: at most one submission is buffered
	// (fewer if the worker has not yet pulled the gate), so the second
	// must see 429.
	saw429 := false
	for i := 0; i < 2 && !saw429; i++ {
		body := fmt.Sprintf(`{"engine": "graphx", "algorithm": "cc", "dataset": "orkut", "scale": 20000, "seed": %d, "nodes": 1}`, i)
		if _, err := client.Submit([]byte(body)); err != nil {
			if !strings.Contains(err.Error(), "429") {
				t.Fatalf("unexpected rejection: %v", err)
			}
			saw429 = true
		}
	}
	if !saw429 {
		t.Fatal("queue never filled; no 429 observed")
	}
}

// TestServeDrain: draining rejects new submissions with 503 but finishes
// admitted jobs, whose results stay fetchable.
func TestServeDrain(t *testing.T) {
	srv, client := startServer(t, Options{})
	reply, err := client.Submit([]byte(suiteBody))
	if err != nil {
		t.Fatal(err)
	}
	srv.Drain()
	if _, err := client.Submit([]byte(suiteBody)); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("submit while draining: %v", err)
	}
	res, err := client.Result(reply.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || len(res.Entries) != 2 {
		t.Fatalf("drained job result %+v", res)
	}
	srv.Drain() // idempotent
}

// TestServeManifest runs a daemon with a manifest: submissions name
// datasets logically and the daemon resolves them before validation.
func TestServeManifest(t *testing.T) {
	dir := t.TempDir()
	content := "0 1\n1 2\n2 0\n"
	path := dir + "/toy.el"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(content))
	ref := "file+edgelist:" + path + "#sha256=" + hex.EncodeToString(sum[:])
	m, err := gx.ParseManifest([]byte(fmt.Sprintf(`{"datasets": {"toy": %q}}`, ref)))
	if err != nil {
		t.Fatal(err)
	}
	_, client := startServer(t, Options{Manifest: m})

	body := `{"engine": "graphx", "algorithm": "cc", "dataset": "toy", "nodes": 1}`
	reply, err := client.Submit([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Result(reply.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("manifest-resolved run failed: %+v", res.Entries)
	}
	if got := res.Entries[0].Scenario.Dataset; got != ref {
		t.Fatalf("served scenario dataset %q, want resolved %q", got, ref)
	}
}

// TestServeHealthz checks the liveness payload decodes and carries the
// cache counters.
func TestServeHealthz(t *testing.T) {
	_, client := startServer(t, Options{ResultCapacity: 7})
	resp, err := http.Get(client.base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Results.Capacity != 7 {
		t.Fatalf("health %+v", h)
	}
}

// TestRenderMatchesLocal renders a computed entry report and checks the
// load-bearing lines; byte-identity against the gxrun golden is covered
// by the cmd/gxd end-to-end test.
func TestRenderMatchesLocal(t *testing.T) {
	_, client := startServer(t, Options{})
	reply, err := client.Submit([]byte(suiteBody))
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Result(reply.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for i, rep := range res.Entries {
		RenderEntry(&buf, i+1, len(res.Entries), rep)
	}
	RenderSuiteSummary(&buf, res.Entries, res.Cache)
	out := buf.String()
	for _, want := range []string{
		"[1/2] pr: pagerank on orkut/powergraph over 2 nodes, accel=gpu",
		"supersteps  : 5 ",
		"result      : ",
		"dataset cache: 1 graphs loaded (1 hits), 2 partitionings built (0 hits)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
}
