package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"gxplug/gx"
)

// Options configure a Server.
type Options struct {
	// Pool bounds suite-entry concurrency per job (0 = GOMAXPROCS).
	Pool int
	// ResultCapacity bounds the process-wide result cache in entries
	// (0 = 1024).
	ResultCapacity int
	// QueueDepth bounds the admission queue — jobs accepted but not yet
	// running (0 = 64). A full queue rejects submissions with 429.
	QueueDepth int
	// Retention bounds how many finished jobs stay resident (0 = 256).
	// Past the bound the oldest finished job is evicted — its id 404s and
	// its event history is released; running and queued jobs never
	// evict. Event histories are kept until eviction, so streams of any
	// resident job replay in full.
	Retention int
	// Budget, when positive, is the admission cost ceiling: a submission
	// whose planner-predicted serial virtual cost exceeds it is rejected
	// with 422 and a [CostReject] body carrying the estimate, before the
	// job consumes a queue slot. Zero admits everything unpriced.
	Budget time.Duration
	// Plan selects the dispatch order jobs run under ("" = file order,
	// gx.LPT = longest-predicted-first). Results are bit-identical either
	// way; LPT packs the entry pool tighter on mixed suites.
	Plan gx.Plan
	// Manifest, when non-empty, resolves logical dataset names in every
	// submission before validation.
	Manifest gx.Manifest
	// Stats, when non-nil, seeds the planner with a pre-loaded
	// predicted-vs-actual history (gxd -stats persists one across
	// restarts) and forces a planner to exist even without LPT or a
	// budget, so the history keeps accumulating.
	Stats *gx.PlannerStats
}

// maxSubmitBytes bounds a submission body; suites are small JSON.
const maxSubmitBytes = 8 << 20

// Server is the gxd daemon core: one process-wide [gx.DatasetCache] and
// one digest-keyed [gx.ResultCache] shared across every submission, a
// bounded admission queue feeding a single executor worker (entries
// within a job still fan out on the gx pool), per-job NDJSON event
// streams, and a drain path that finishes every admitted job before
// shutdown. It implements http.Handler; cmd/gxd puts it behind a
// listener and signal handling.
type Server struct {
	pool    int
	cache   *gx.DatasetCache
	results *gx.ResultCache
	mf      gx.Manifest
	mux     *http.ServeMux

	// planner prices submissions for cost-aware admission and orders
	// LPT dispatch; nil unless Options enabled either (so a default
	// server's cache accounting is byte-identical to the pre-planner
	// daemon). Its stats record predicted-vs-actual makespans across
	// jobs, so repeat submissions are priced from history.
	planner *gx.Planner
	plan    gx.Plan
	budget  time.Duration

	mu        sync.Mutex
	jobs      map[string]*job
	seq       int
	draining  bool
	retention int
	// doneOrder tracks finished jobs FIFO for retention eviction;
	// evicted counts jobs released over the server's lifetime.
	doneOrder []string
	evicted   int

	queue   chan *job
	workers sync.WaitGroup
}

// job tracks one admitted submission through its lifetime.
type job struct {
	id    string
	suite gx.Suite

	mu   sync.Mutex
	cond *sync.Cond
	// state transitions queued → running → done under mu.
	state string
	// events is the append-only history every /v1/stream reader replays
	// then follows; cond broadcasts on every append.
	events []Event
	// supersteps counts engine supersteps executed (not served).
	supersteps int64
	entriesIn  int
	result     *JobResult
}

// New returns a Server and starts its executor worker. Call
// [Server.Drain] before discarding it.
func New(opts Options) (*Server, error) {
	pool := opts.Pool
	if pool == 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	if pool < 1 {
		return nil, fmt.Errorf("serve: pool %d (want ≥ 1)", pool)
	}
	capacity := opts.ResultCapacity
	if capacity == 0 {
		capacity = 1024
	}
	results, err := gx.NewResultCache(capacity)
	if err != nil {
		return nil, err
	}
	depth := opts.QueueDepth
	if depth == 0 {
		depth = 64
	}
	if depth < 1 {
		return nil, fmt.Errorf("serve: queue depth %d (want ≥ 1)", depth)
	}
	retention := opts.Retention
	if retention == 0 {
		retention = 256
	}
	if retention < 1 {
		return nil, fmt.Errorf("serve: retention %d (want ≥ 1)", retention)
	}
	if opts.Budget < 0 {
		return nil, fmt.Errorf("serve: budget %v (want ≥ 0)", opts.Budget)
	}
	if p := opts.Plan; p != "" && p != gx.FileOrder && p != gx.LPT {
		return nil, fmt.Errorf("serve: unknown plan %q (want %q or %q)", p, gx.FileOrder, gx.LPT)
	}
	s := &Server{
		pool:      pool,
		cache:     gx.NewDatasetCache(),
		results:   results,
		mf:        opts.Manifest,
		plan:      opts.Plan,
		budget:    opts.Budget,
		retention: retention,
		jobs:      make(map[string]*job),
		queue:     make(chan *job, depth),
	}
	if s.plan == gx.LPT || s.budget > 0 || opts.Stats != nil {
		stats := opts.Stats
		if stats == nil {
			var err error
			if stats, err = gx.NewPlannerStats(0); err != nil {
				return nil, err
			}
		}
		s.planner = gx.NewPlanner(s.cache, stats)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/submit", s.handleSubmit)
	s.mux.HandleFunc("/v1/status", s.handleStatus)
	s.mux.HandleFunc("/v1/result", s.handleResult)
	s.mux.HandleFunc("/v1/stream", s.handleStream)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.workers.Add(1)
	go s.worker()
	return s, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain stops admission — further submissions get 503 — and blocks
// until every already-admitted job has run to completion. Idempotent.
func (s *Server) Drain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.workers.Wait()
}

// worker executes admitted jobs one at a time, in admission order, so
// the daemon's throughput knob is the gx entry pool, not inter-job
// interleaving. It exits when Drain closes the queue and the backlog
// is finished.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob drives one suite through the gx execution core, mirroring its
// serialized callbacks into the job's event stream.
func (s *Server) runJob(j *job) {
	j.setState(StateRunning)
	opts := []gx.SuiteOption{
		gx.WithPool(s.pool),
		gx.WithCache(s.cache),
		gx.WithResultCache(s.results),
		gx.WithSuiteObserver(func(entry string, st gx.Superstep) {
			j.mu.Lock()
			j.supersteps++
			j.mu.Unlock()
			j.append(Event{Type: "superstep", Entry: entry, Superstep: &st})
		}),
		gx.WithEntryDone(func(er gx.EntryResult) {
			rep := ReportOf(er)
			j.mu.Lock()
			j.entriesIn++
			j.mu.Unlock()
			j.append(Event{Type: "entry", Report: &rep})
		}),
	}
	if s.planner != nil {
		// The process-wide planner dispatches the job (LPT when
		// configured) and records its predicted-vs-actual makespans, so
		// admission pricing of repeat submissions sharpens over time.
		opts = append(opts, gx.WithPlanner(s.planner), gx.WithPlan(s.plan))
	}
	res, err := gx.RunSuite(j.suite, opts...)

	jr := &JobResult{ID: j.id, Suite: j.suite.Name}
	if err != nil {
		// Submissions are validated before admission, so this is a
		// should-not-happen; report it as one failed pseudo-entry
		// rather than dropping the job on the floor.
		jr.Entries = []EntryReport{{Name: "suite", Err: err.Error(), Class: gx.FailureClass(err)}}
		jr.Failed = 1
	} else {
		jr.Entries = make([]EntryReport, len(res.Entries))
		for i, er := range res.Entries {
			jr.Entries[i] = ReportOf(er)
			if er.Err != nil {
				jr.Failed++
			}
		}
		jr.Cache = res.Cache
	}
	jr.Results = s.results.Stats()

	// Completion is one critical section: the done state, the result, and
	// the terminal "done" event become visible atomically. Splitting them
	// (state first, event in a second lock hold) opens a race where a
	// stream reader observes state == done with the history drained and
	// finishes without ever seeing the done event.
	j.mu.Lock()
	jr.Supersteps = j.supersteps
	j.result = jr
	j.state = StateDone
	j.events = append(j.events, Event{Type: "done", Result: jr})
	j.cond.Broadcast()
	j.mu.Unlock()

	s.finishJob(j.id)
}

// finishJob records a completed job for FIFO retention and evicts the
// oldest finished jobs past the bound. Evicted ids 404; their event
// histories are released with them.
func (s *Server) finishJob(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.doneOrder = append(s.doneOrder, id)
	for len(s.doneOrder) > s.retention {
		oldest := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		delete(s.jobs, oldest)
		s.evicted++
	}
}

func (j *job) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.mu.Unlock()
}

// append adds one event to the history and wakes every stream reader.
func (j *job) append(ev Event) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// handleSubmit parses a scenario or suite body, resolves it through the
// manifest, validates it, and admits it to the bounded queue.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "serve: submit is POST")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSubmitBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "serve: read body: %v", err)
		return
	}
	if len(body) > maxSubmitBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "serve: submission exceeds %d bytes", maxSubmitBytes)
		return
	}
	suite, err := parseSubmission(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	suite = s.mf.ResolveSuite(suite).WithDefaults()
	if err := suite.Validate(); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if rejected := s.admitCost(w, suite); rejected {
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "serve: draining, not accepting submissions")
		return
	}
	s.seq++
	j := &job{id: fmt.Sprintf("job-%d", s.seq), suite: suite, state: StateQueued}
	j.cond = sync.NewCond(&j.mu)
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
	default:
		s.seq--
		s.mu.Unlock()
		httpError(w, http.StatusTooManyRequests, "serve: admission queue full, retry later")
		return
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, SubmitReply{ID: j.id, State: StateQueued})
}

// admitCost enforces the configured admission budget: the planner prices
// the validated suite (a dry pass over graph stats — no supersteps), and
// a predicted serial virtual cost above the budget is rejected with 422
// and the full estimate, before the job takes a queue slot. A failed
// estimate admits — the budget is a guard against knowably huge jobs,
// not a second validator — as does an unconfigured budget.
func (s *Server) admitCost(w http.ResponseWriter, suite gx.Suite) (rejected bool) {
	if s.budget <= 0 || s.planner == nil {
		return false
	}
	plan, err := s.planner.PlanSuite(suite, s.pool)
	if err != nil || plan.PredictedSerial <= s.budget {
		return false
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusUnprocessableEntity)
	writeJSON(w, CostReject{
		Error:     fmt.Sprintf("serve: predicted cost %v exceeds budget %v", plan.PredictedSerial, s.budget),
		Predicted: plan.PredictedSerial,
		Budget:    s.budget,
		Entries:   plan.Entries,
	})
	return true
}

// parseSubmission accepts either a suite (preferred) or a bare scenario,
// which is wrapped as a one-entry suite named "scenario".
func parseSubmission(body []byte) (gx.Suite, error) {
	suite, suiteErr := gx.ParseSuite(body)
	if suiteErr == nil && len(suite.Entries) > 0 {
		return suite, nil
	}
	sc, scErr := gx.ParseScenario(body)
	if scErr == nil {
		return gx.Suite{Entries: []gx.SuiteEntry{{Name: "scenario", Scenario: sc}}}, nil
	}
	if suiteErr == nil {
		return gx.Suite{}, fmt.Errorf("serve: submission has no entries")
	}
	return gx.Suite{}, fmt.Errorf("serve: body is neither a suite (%v) nor a scenario (%v)", suiteErr, scErr)
}

// lookup resolves the id query parameter to a job.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id := r.URL.Query().Get("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "serve: unknown job %q", id)
		return nil
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	st := Status{
		ID:          j.id,
		State:       j.state,
		Supersteps:  j.supersteps,
		Entries:     len(j.suite.Entries),
		EntriesDone: j.entriesIn,
	}
	if j.state == StateDone {
		st.EntriesDone = len(j.suite.Entries)
	}
	j.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	wait := r.URL.Query().Get("wait") != ""
	ctx := r.Context()
	if wait {
		defer watchDisconnect(ctx, j)()
	}
	j.mu.Lock()
	for wait && j.state != StateDone && ctx.Err() == nil {
		j.cond.Wait()
	}
	res := j.result
	j.mu.Unlock()
	if ctx.Err() != nil {
		return // client went away while waiting
	}
	if res == nil {
		httpError(w, http.StatusConflict, "serve: job %s not done (pass wait=1 to block)", j.id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, res)
}

// handleStream replays the job's event history as NDJSON and follows it
// live until the terminal "done" event. A client connecting after
// completion gets the full history — streams are replayable, so a
// result-cache-served job streams the same shape as a computed one
// (entry events straight to done, no supersteps).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ctx := r.Context()
	defer watchDisconnect(ctx, j)()
	i := 0
	for {
		j.mu.Lock()
		for i >= len(j.events) && j.state != StateDone && ctx.Err() == nil {
			j.cond.Wait()
		}
		batch := j.events[i:len(j.events):len(j.events)]
		i = len(j.events)
		// The "done" event is the last ever appended, so the stream is
		// complete once the job is done and the history is drained.
		finished := j.state == StateDone && i >= len(j.events)
		j.mu.Unlock()
		if ctx.Err() != nil {
			return // client went away; stop following and free the goroutine
		}
		for _, ev := range batch {
			if err := enc.Encode(ev); err != nil {
				return // client went away
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if finished {
			return
		}
	}
}

// watchDisconnect wakes the job's cond waiters when ctx is canceled —
// an abandoned stream or result?wait=1 request would otherwise park its
// handler goroutine on the cond until the job finishes (forever, for a
// long job). The broadcast holds j.mu so a waiter between its condition
// check and Wait cannot miss it. The returned stop func releases the
// watcher; call it when the handler returns.
func watchDisconnect(ctx context.Context, j *job) (stop func()) {
	cancel := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	return func() { cancel() }
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n, evicted := len(s.jobs), s.evicted
	s.mu.Unlock()
	planner := 0
	if st := s.PlannerStats(); st != nil {
		planner = st.Len()
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, Health{OK: true, Jobs: n, Evicted: evicted, Cache: s.cache.Stats(),
		Results: s.results.Stats(), Planner: planner})
}

// PlannerStats exposes the server's predicted-vs-actual history, nil
// when it runs without a planner — what `gxd -stats` persists at drain.
func (s *Server) PlannerStats() *gx.PlannerStats {
	if s.planner == nil {
		return nil
	}
	return s.planner.Stats()
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // best effort: the client may have disconnected
}
