// Package shm reimplements the subset of the UNIX System V IPC API that
// GX-Plug's daemon–agent framework is built on: key-addressed shared
// memory segments (shmget/shmat/shmdt + removal) and message queues
// (msgget/msgsnd/msgrcv).
//
// In the paper, agents live inside upper-system processes (a JVM executor
// or a PowerGraph worker) and daemons are separate accelerator-owning
// processes; the two sides share graph data through System V segments and
// exchange control flags through message queues (§II-B, §IV-C). This
// reproduction runs daemons and agents as goroutine "processes" that are
// *only* allowed to communicate through this package, preserving the
// architecture — including the property that a daemon outlives any single
// iteration, which is what the runtime-isolation experiment (Fig 13)
// measures.
package shm

import (
	"errors"
	"fmt"
	"sync"
)

// Key identifies a segment or queue, like a System V IPC key.
type Key int64

// Errors mirror the errno values the System V calls produce.
var (
	// ErrExists corresponds to EEXIST: IPC_CREAT|IPC_EXCL on an existing key.
	ErrExists = errors.New("shm: key already exists")
	// ErrNotFound corresponds to ENOENT: no object for the key and no IPC_CREAT.
	ErrNotFound = errors.New("shm: no object for key")
	// ErrRemoved corresponds to EIDRM: object removed while in use.
	ErrRemoved = errors.New("shm: object was removed")
	// ErrTooBig corresponds to EINVAL/E2BIG: size above the configured limit.
	ErrTooBig = errors.New("shm: size exceeds limit")
	// ErrNoMsg corresponds to ENOMSG: non-blocking receive found no message.
	ErrNoMsg = errors.New("shm: no message of requested type")
	// ErrBadSize corresponds to EINVAL: non-positive segment size.
	ErrBadSize = errors.New("shm: invalid size")
)

// Limits bound the simulated kernel, like SHMMAX / MSGMNB.
type Limits struct {
	// MaxSegmentBytes bounds a single shared memory segment (SHMMAX).
	MaxSegmentBytes int
	// MaxQueueBytes bounds the total payload queued on one message queue
	// (MSGMNB). Msgsnd blocks while the queue is full.
	MaxQueueBytes int
}

// DefaultLimits matches a generously configured Linux host.
func DefaultLimits() Limits {
	return Limits{
		MaxSegmentBytes: 1 << 30, // 1 GiB
		MaxQueueBytes:   1 << 20, // 1 MiB of queued payload
	}
}

// IPC is one simulated kernel IPC namespace. Every cluster node in the
// GX-Plug simulation owns its own namespace: agents and daemons on the
// same node share it, components on different nodes cannot.
type IPC struct {
	mu     sync.Mutex
	lim    Limits
	segs   map[Key]*Segment
	queues map[Key]*Queue
	nextID int

	// Stats are cumulative counters used by tests and the harness.
	stats Stats
}

// Stats counts IPC activity; the harness charges virtual transfer time for
// BytesCopied through message queues (shared segments are zero-copy, which
// is the point of the design — see §II-B "benefits").
type Stats struct {
	SegmentsCreated int
	QueuesCreated   int
	MessagesSent    int
	BytesCopied     int64
}

// NewIPC creates an empty namespace with the given limits.
func NewIPC(lim Limits) *IPC {
	return &IPC{
		lim:    lim,
		segs:   make(map[Key]*Segment),
		queues: make(map[Key]*Queue),
	}
}

// Stats returns a snapshot of the namespace counters.
func (ipc *IPC) Stats() Stats {
	ipc.mu.Lock()
	defer ipc.mu.Unlock()
	return ipc.stats
}

// Segment is a shared memory segment. The backing slice is handed out by
// Attach; all attachments alias the same memory, exactly like shmat.
type Segment struct {
	ipc  *IPC
	key  Key
	id   int
	data []byte

	mu       sync.Mutex
	nattach  int
	removed  bool // marked for destruction (IPC_RMID)
	detached bool // fully destroyed
}

// GetFlag selects creation behaviour for Shmget and Msgget, mirroring
// IPC_CREAT and IPC_EXCL.
type GetFlag int

const (
	// Open requires the object to exist already.
	Open GetFlag = iota
	// Create opens the object, creating it if absent (IPC_CREAT).
	Create
	// CreateExclusive creates the object, failing if present (IPC_CREAT|IPC_EXCL).
	CreateExclusive
)

// Shmget opens or creates the shared memory segment for key with the given
// size in bytes. Like the real call, an existing segment is returned as-is
// (its size is not changed); opening an existing segment with a larger
// size than it was created with is an error.
func (ipc *IPC) Shmget(key Key, size int, flag GetFlag) (*Segment, error) {
	ipc.mu.Lock()
	defer ipc.mu.Unlock()
	if seg, ok := ipc.segs[key]; ok {
		if flag == CreateExclusive {
			return nil, fmt.Errorf("shmget key %d: %w", key, ErrExists)
		}
		if size > len(seg.data) {
			return nil, fmt.Errorf("shmget key %d: requested %d > segment size %d: %w",
				key, size, len(seg.data), ErrTooBig)
		}
		return seg, nil
	}
	if flag == Open {
		return nil, fmt.Errorf("shmget key %d: %w", key, ErrNotFound)
	}
	if size <= 0 {
		return nil, fmt.Errorf("shmget key %d: size %d: %w", key, size, ErrBadSize)
	}
	if size > ipc.lim.MaxSegmentBytes {
		return nil, fmt.Errorf("shmget key %d: size %d > SHMMAX %d: %w",
			key, size, ipc.lim.MaxSegmentBytes, ErrTooBig)
	}
	ipc.nextID++
	seg := &Segment{ipc: ipc, key: key, id: ipc.nextID, data: make([]byte, size)}
	ipc.segs[key] = seg
	ipc.stats.SegmentsCreated++
	return seg, nil
}

// Key returns the key the segment was created under.
func (s *Segment) Key() Key { return s.key }

// Size returns the segment size in bytes.
func (s *Segment) Size() int { return len(s.data) }

// Attach maps the segment and returns the shared backing memory. Every
// attachment sees every other attachment's writes (it is the same slice).
// Attaching a removed segment fails with ErrRemoved.
func (s *Segment) Attach() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.detached || s.removed {
		return nil, fmt.Errorf("shmat key %d: %w", s.key, ErrRemoved)
	}
	s.nattach++
	return s.data, nil
}

// Detach unmaps one attachment. When the segment has been marked removed
// and the last attachment detaches, the memory is destroyed — the System V
// deferred-deletion behaviour.
func (s *Segment) Detach() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.nattach == 0 {
		return fmt.Errorf("shmdt key %d: not attached", s.key)
	}
	s.nattach--
	if s.removed && s.nattach == 0 {
		s.destroyLocked()
	}
	return nil
}

// Remove marks the segment for destruction (IPC_RMID). The key becomes
// free immediately; the memory survives until the last Detach.
func (s *Segment) Remove() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.removed {
		return
	}
	s.removed = true
	s.ipc.mu.Lock()
	if s.ipc.segs[s.key] == s {
		delete(s.ipc.segs, s.key)
	}
	s.ipc.mu.Unlock()
	if s.nattach == 0 {
		s.destroyLocked()
	}
}

// Attached reports the current number of attachments (shm_nattch).
func (s *Segment) Attached() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nattach
}

func (s *Segment) destroyLocked() {
	s.detached = true
	s.data = nil
}

// Msg is one queued message: a positive type plus an opaque payload, as in
// msgbuf. Payloads are copied on send and on receive, so queue traffic —
// unlike segment traffic — has a per-byte cost, which is why GX-Plug puts
// bulk graph data in segments and only flags in queues.
type Msg struct {
	Type    int64
	Payload []byte
}

// Queue is a System V message queue.
type Queue struct {
	ipc *IPC
	key Key

	mu      sync.Mutex
	notFull *sync.Cond
	arrived *sync.Cond
	msgs    []Msg
	bytes   int
	removed bool
}

// Msgget opens or creates the message queue for key.
func (ipc *IPC) Msgget(key Key, flag GetFlag) (*Queue, error) {
	ipc.mu.Lock()
	defer ipc.mu.Unlock()
	if q, ok := ipc.queues[key]; ok {
		if flag == CreateExclusive {
			return nil, fmt.Errorf("msgget key %d: %w", key, ErrExists)
		}
		return q, nil
	}
	if flag == Open {
		return nil, fmt.Errorf("msgget key %d: %w", key, ErrNotFound)
	}
	q := &Queue{ipc: ipc, key: key}
	q.notFull = sync.NewCond(&q.mu)
	q.arrived = sync.NewCond(&q.mu)
	ipc.queues[key] = q
	ipc.stats.QueuesCreated++
	return q, nil
}

// Key returns the queue's key.
func (q *Queue) Key() Key { return q.key }

// Len returns the number of queued messages.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.msgs)
}

// Msgsnd enqueues a message, blocking while the queue byte limit is
// exceeded. The message type must be positive. The payload is copied.
func (q *Queue) Msgsnd(mtype int64, payload []byte) error {
	if mtype <= 0 {
		return fmt.Errorf("msgsnd key %d: non-positive type %d", q.key, mtype)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for !q.removed && q.bytes+len(payload) > q.ipc.lim.MaxQueueBytes && len(q.msgs) > 0 {
		q.notFull.Wait()
	}
	if q.removed {
		return fmt.Errorf("msgsnd key %d: %w", q.key, ErrRemoved)
	}
	p := make([]byte, len(payload))
	copy(p, payload)
	q.msgs = append(q.msgs, Msg{Type: mtype, Payload: p})
	q.bytes += len(p)

	q.ipc.mu.Lock()
	q.ipc.stats.MessagesSent++
	q.ipc.stats.BytesCopied += int64(len(p))
	q.ipc.mu.Unlock()

	q.arrived.Broadcast()
	return nil
}

// Msgrcv dequeues a message. mtype == 0 takes the first message in FIFO
// order; mtype > 0 takes the first message of exactly that type (System V
// semantics). If block is false and no matching message is queued, it
// returns ErrNoMsg; otherwise it waits.
func (q *Queue) Msgrcv(mtype int64, block bool) (Msg, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.removed {
			return Msg{}, fmt.Errorf("msgrcv key %d: %w", q.key, ErrRemoved)
		}
		if i := q.matchLocked(mtype); i >= 0 {
			m := q.msgs[i]
			q.msgs = append(q.msgs[:i], q.msgs[i+1:]...)
			q.bytes -= len(m.Payload)
			q.notFull.Broadcast()

			q.ipc.mu.Lock()
			q.ipc.stats.BytesCopied += int64(len(m.Payload))
			q.ipc.mu.Unlock()
			return m, nil
		}
		if !block {
			return Msg{}, fmt.Errorf("msgrcv key %d type %d: %w", q.key, mtype, ErrNoMsg)
		}
		q.arrived.Wait()
	}
}

func (q *Queue) matchLocked(mtype int64) int {
	if mtype == 0 {
		if len(q.msgs) == 0 {
			return -1
		}
		return 0
	}
	for i, m := range q.msgs {
		if m.Type == mtype {
			return i
		}
	}
	return -1
}

// Remove destroys the queue (IPC_RMID): pending and future senders and
// receivers fail with ErrRemoved.
func (q *Queue) Remove() {
	q.mu.Lock()
	q.removed = true
	q.msgs = nil
	q.bytes = 0
	q.arrived.Broadcast()
	q.notFull.Broadcast()
	q.mu.Unlock()

	q.ipc.mu.Lock()
	if q.ipc.queues[q.key] == q {
		delete(q.ipc.queues, q.key)
	}
	q.ipc.mu.Unlock()
}
