package shm

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newIPC() *IPC { return NewIPC(DefaultLimits()) }

func TestShmgetCreateAndOpen(t *testing.T) {
	ipc := newIPC()
	seg, err := ipc.Shmget(42, 128, Create)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if seg.Size() != 128 || seg.Key() != 42 {
		t.Fatalf("segment meta wrong: size=%d key=%d", seg.Size(), seg.Key())
	}
	again, err := ipc.Shmget(42, 128, Open)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if again != seg {
		t.Fatal("open returned a different segment for same key")
	}
}

func TestShmgetOpenMissing(t *testing.T) {
	ipc := newIPC()
	if _, err := ipc.Shmget(7, 8, Open); !errors.Is(err, ErrNotFound) {
		t.Fatalf("open missing: err = %v, want ErrNotFound", err)
	}
}

func TestShmgetExclusiveExisting(t *testing.T) {
	ipc := newIPC()
	if _, err := ipc.Shmget(7, 8, Create); err != nil {
		t.Fatal(err)
	}
	if _, err := ipc.Shmget(7, 8, CreateExclusive); !errors.Is(err, ErrExists) {
		t.Fatalf("exclusive on existing: err = %v, want ErrExists", err)
	}
}

func TestShmgetBadSizes(t *testing.T) {
	ipc := newIPC()
	if _, err := ipc.Shmget(1, 0, Create); !errors.Is(err, ErrBadSize) {
		t.Fatalf("zero size: err = %v, want ErrBadSize", err)
	}
	if _, err := ipc.Shmget(2, DefaultLimits().MaxSegmentBytes+1, Create); !errors.Is(err, ErrTooBig) {
		t.Fatalf("over SHMMAX: err = %v, want ErrTooBig", err)
	}
	if _, err := ipc.Shmget(3, 16, Create); err != nil {
		t.Fatal(err)
	}
	if _, err := ipc.Shmget(3, 32, Open); !errors.Is(err, ErrTooBig) {
		t.Fatalf("open larger than created: err = %v, want ErrTooBig", err)
	}
}

// The core property of the design: all attachments alias the same memory,
// so an agent's write is immediately visible to its daemon with no copy.
func TestAttachSharesMemory(t *testing.T) {
	ipc := newIPC()
	seg, _ := ipc.Shmget(1, 8, Create)
	a, err := seg.Attach()
	if err != nil {
		t.Fatal(err)
	}
	b, err := seg.Attach()
	if err != nil {
		t.Fatal(err)
	}
	a[3] = 0xAB
	if b[3] != 0xAB {
		t.Fatal("attachments do not share memory")
	}
	if seg.Attached() != 2 {
		t.Fatalf("Attached() = %d, want 2", seg.Attached())
	}
}

func TestDetachUnattached(t *testing.T) {
	ipc := newIPC()
	seg, _ := ipc.Shmget(1, 8, Create)
	if err := seg.Detach(); err == nil {
		t.Fatal("detach with no attachments succeeded")
	}
}

// System V deferred deletion: Remove frees the key at once but the memory
// lives until the last detach.
func TestRemoveDeferredDeletion(t *testing.T) {
	ipc := newIPC()
	seg, _ := ipc.Shmget(9, 8, Create)
	mem, _ := seg.Attach()
	seg.Remove()

	// Key free: creating a new segment under the same key succeeds.
	if _, err := ipc.Shmget(9, 8, CreateExclusive); err != nil {
		t.Fatalf("key not freed after Remove: %v", err)
	}
	// Old memory still usable by existing attachment.
	mem[0] = 1
	// New attachments rejected.
	if _, err := seg.Attach(); !errors.Is(err, ErrRemoved) {
		t.Fatalf("attach after remove: err = %v, want ErrRemoved", err)
	}
	if err := seg.Detach(); err != nil {
		t.Fatalf("final detach: %v", err)
	}
}

func TestRemoveIdempotent(t *testing.T) {
	ipc := newIPC()
	seg, _ := ipc.Shmget(9, 8, Create)
	seg.Remove()
	seg.Remove() // must not panic or corrupt state
}

func TestMsgQueueFIFO(t *testing.T) {
	ipc := newIPC()
	q, err := ipc.Msgget(5, Create)
	if err != nil {
		t.Fatal(err)
	}
	for i := byte(0); i < 5; i++ {
		if err := q.Msgsnd(1, []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := byte(0); i < 5; i++ {
		m, err := q.Msgrcv(0, true)
		if err != nil {
			t.Fatal(err)
		}
		if m.Payload[0] != i {
			t.Fatalf("out of order: got %d want %d", m.Payload[0], i)
		}
	}
}

func TestMsgrcvByType(t *testing.T) {
	ipc := newIPC()
	q, _ := ipc.Msgget(5, Create)
	q.Msgsnd(2, []byte("two"))
	q.Msgsnd(1, []byte("one"))
	m, err := q.Msgrcv(1, true)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Payload) != "one" || m.Type != 1 {
		t.Fatalf("typed receive got %q type %d", m.Payload, m.Type)
	}
	// The type-2 message must still be there.
	m, err = q.Msgrcv(0, true)
	if err != nil || string(m.Payload) != "two" {
		t.Fatalf("remaining message wrong: %q %v", m.Payload, err)
	}
}

func TestMsgrcvNonBlocking(t *testing.T) {
	ipc := newIPC()
	q, _ := ipc.Msgget(5, Create)
	if _, err := q.Msgrcv(0, false); !errors.Is(err, ErrNoMsg) {
		t.Fatalf("empty non-blocking receive: err = %v, want ErrNoMsg", err)
	}
	q.Msgsnd(3, []byte("x"))
	if _, err := q.Msgrcv(7, false); !errors.Is(err, ErrNoMsg) {
		t.Fatalf("type-mismatch non-blocking receive: err = %v, want ErrNoMsg", err)
	}
}

func TestMsgsndRejectsBadType(t *testing.T) {
	ipc := newIPC()
	q, _ := ipc.Msgget(5, Create)
	if err := q.Msgsnd(0, nil); err == nil {
		t.Fatal("type 0 accepted")
	}
	if err := q.Msgsnd(-1, nil); err == nil {
		t.Fatal("negative type accepted")
	}
}

func TestMsgPayloadCopied(t *testing.T) {
	ipc := newIPC()
	q, _ := ipc.Msgget(5, Create)
	buf := []byte{1, 2, 3}
	q.Msgsnd(1, buf)
	buf[0] = 99 // mutate after send; queued copy must be unaffected
	m, _ := q.Msgrcv(0, true)
	if m.Payload[0] != 1 {
		t.Fatal("payload aliased sender buffer")
	}
}

func TestMsgBlockingReceiveWakesUp(t *testing.T) {
	ipc := newIPC()
	q, _ := ipc.Msgget(5, Create)
	done := make(chan Msg, 1)
	go func() {
		m, err := q.Msgrcv(0, true)
		if err != nil {
			t.Errorf("receive: %v", err)
		}
		done <- m
	}()
	time.Sleep(10 * time.Millisecond)
	if err := q.Msgsnd(1, []byte("wake")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-done:
		if string(m.Payload) != "wake" {
			t.Fatalf("got %q", m.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked receiver never woke up")
	}
}

func TestQueueRemoveUnblocksWaiters(t *testing.T) {
	ipc := newIPC()
	q, _ := ipc.Msgget(5, Create)
	errc := make(chan error, 1)
	go func() {
		_, err := q.Msgrcv(0, true)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	q.Remove()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrRemoved) {
			t.Fatalf("err = %v, want ErrRemoved", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not unblocked by Remove")
	}
	if err := q.Msgsnd(1, nil); !errors.Is(err, ErrRemoved) {
		t.Fatalf("send after remove: err = %v, want ErrRemoved", err)
	}
}

func TestMsggetOpenMissing(t *testing.T) {
	ipc := newIPC()
	if _, err := ipc.Msgget(5, Open); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestStats(t *testing.T) {
	ipc := newIPC()
	ipc.Shmget(1, 8, Create)
	q, _ := ipc.Msgget(2, Create)
	q.Msgsnd(1, []byte("abcd"))
	q.Msgrcv(0, true)
	s := ipc.Stats()
	if s.SegmentsCreated != 1 || s.QueuesCreated != 1 || s.MessagesSent != 1 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if s.BytesCopied != 8 { // 4 on send + 4 on receive
		t.Fatalf("BytesCopied = %d, want 8", s.BytesCopied)
	}
}

// Property: any interleaving of concurrent senders delivers every message
// exactly once, and per-sender order is preserved by FIFO receive.
func TestConcurrentSendersDeliverAll(t *testing.T) {
	ipc := newIPC()
	q, _ := ipc.Msgget(1, Create)
	const senders, per = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := q.Msgsnd(int64(s+1), []byte{byte(i)}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	lastSeen := make(map[int64]int)
	for n := 0; n < senders*per; n++ {
		m, err := q.Msgrcv(0, false)
		if err != nil {
			t.Fatalf("receive %d: %v", n, err)
		}
		if prev, ok := lastSeen[m.Type]; ok && int(m.Payload[0]) <= prev {
			t.Fatalf("per-sender order violated for sender %d: %d after %d",
				m.Type, m.Payload[0], prev)
		}
		lastSeen[m.Type] = int(m.Payload[0])
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
}

// Property: a write through one attachment is readable through another for
// arbitrary offsets and values.
func TestSharedVisibilityQuick(t *testing.T) {
	ipc := newIPC()
	seg, _ := ipc.Shmget(77, 4096, Create)
	w, _ := seg.Attach()
	r, _ := seg.Attach()
	f := func(off uint16, val byte) bool {
		i := int(off) % 4096
		w[i] = val
		return r[i] == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
