// Package simtime provides deterministic virtual-time accounting for the
// GX-Plug simulation substrate.
//
// The reproduction executes all graph computation for real, but charges
// time from calibrated cost models instead of wall clocks, so that every
// figure of the paper is exactly repeatable and independent of the host
// machine. A Clock belongs to one simulated component (a distributed node,
// a device, a pipeline stage); durations are ordinary time.Duration values.
package simtime

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Clock is a monotonically non-decreasing virtual clock.
// The zero value is a clock at time zero, ready to use.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative d panics: virtual time,
// like real time, never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simtime: negative advance %v", d))
	}
	c.now += d
}

// AdvanceTo moves the clock forward to t if t is later than the current
// time; otherwise it is a no-op. It is used at synchronization barriers
// where all participants meet at the latest clock.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero. Only simulation harnesses reset clocks,
// and only between independent runs.
func (c *Clock) Reset() { c.now = 0 }

// TimeFor returns the virtual time to perform `work` units at `rate` units
// per second. Zero or negative rate panics — a component with no
// throughput cannot make progress and indicates a miscalibrated model.
func TimeFor(work, rate float64) time.Duration {
	if rate <= 0 {
		panic(fmt.Sprintf("simtime: non-positive rate %v", rate))
	}
	if work <= 0 {
		return 0
	}
	sec := work / rate
	return time.Duration(sec * float64(time.Second))
}

// TransferTime returns the virtual time to move n bytes over a link of
// `bandwidth` bytes per second with fixed `latency` per transfer.
func TransferTime(n int64, bandwidth float64, latency time.Duration) time.Duration {
	if n <= 0 {
		return latency
	}
	return latency + TimeFor(float64(n), bandwidth)
}

// StageCosts holds the per-stage virtual cost of processing one block in a
// multi-stage pipeline. GX-Plug's pipeline shuffle has exactly three
// stages (download, compute, upload), but the makespan recurrence is
// general.
type StageCosts []time.Duration

// PipelineMakespan computes the completion time of a blocking wavefront
// pipeline: block k cannot start stage s before (a) block k has finished
// stage s-1 and (b) block k-1 has finished stage s. This is the exact
// semantics of the paper's pipeline shuffle (one thread per stage, blocks
// flowing in order), and generalizes Equation 1 of the paper to
// heterogeneous per-block costs.
//
// costs[k][s] is the cost of block k at stage s. All blocks must have the
// same number of stages. An empty input has zero makespan.
func PipelineMakespan(costs []StageCosts) time.Duration {
	if len(costs) == 0 {
		return 0
	}
	stages := len(costs[0])
	if stages == 0 {
		return 0
	}
	// finish[s] holds the finish time of the most recently scheduled block
	// at stage s.
	finish := make([]time.Duration, stages)
	for k, bc := range costs {
		if len(bc) != stages {
			panic(fmt.Sprintf("simtime: block %d has %d stages, want %d", k, len(bc), stages))
		}
		var prev time.Duration // finish of this block at the previous stage
		for s := 0; s < stages; s++ {
			start := prev
			if finish[s] > start {
				start = finish[s]
			}
			finish[s] = start + bc[s]
			prev = finish[s]
		}
	}
	return finish[stages-1]
}

// SequentialMakespan is the non-pipelined counterpart: every block passes
// through every stage strictly one after another (the paper's
// "WithoutPipeline" configuration).
func SequentialMakespan(costs []StageCosts) time.Duration {
	var total time.Duration
	for _, bc := range costs {
		for _, c := range bc {
			total += c
		}
	}
	return total
}

// Histogram summarises a set of durations; harness code uses it to report
// distribution shape (e.g. per-node imbalance).
type Histogram struct {
	Count int
	Min   time.Duration
	Max   time.Duration
	Sum   time.Duration
	P50   time.Duration
	P95   time.Duration
}

// Summarize builds a Histogram from samples. An empty input yields a zero
// Histogram.
func Summarize(samples []time.Duration) Histogram {
	if len(samples) == 0 {
		return Histogram{}
	}
	s := make([]time.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	h := Histogram{
		Count: len(s),
		Min:   s[0],
		Max:   s[len(s)-1],
		P50:   s[percentileIndex(len(s), 0.50)],
		P95:   s[percentileIndex(len(s), 0.95)],
	}
	for _, v := range s {
		h.Sum += v
	}
	return h
}

func percentileIndex(n int, p float64) int {
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Mean returns the average duration, or zero for an empty histogram.
func (h Histogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Seconds renders a duration as fractional seconds, the unit used in every
// figure of the paper.
func Seconds(d time.Duration) float64 { return d.Seconds() }
