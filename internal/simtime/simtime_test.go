package simtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now() = %v, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(3 * time.Second)
	c.Advance(2 * time.Second)
	if got := c.Now(); got != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	c.Advance(10 * time.Second)
	c.AdvanceTo(5 * time.Second) // earlier: no-op
	if c.Now() != 10*time.Second {
		t.Fatalf("AdvanceTo earlier moved clock to %v", c.Now())
	}
	c.AdvanceTo(15 * time.Second)
	if c.Now() != 15*time.Second {
		t.Fatalf("AdvanceTo later: clock = %v, want 15s", c.Now())
	}
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.Advance(time.Hour)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset: clock = %v, want 0", c.Now())
	}
}

func TestTimeFor(t *testing.T) {
	if got := TimeFor(100, 100); got != time.Second {
		t.Fatalf("TimeFor(100,100) = %v, want 1s", got)
	}
	if got := TimeFor(0, 100); got != 0 {
		t.Fatalf("TimeFor(0,100) = %v, want 0", got)
	}
	if got := TimeFor(-5, 100); got != 0 {
		t.Fatalf("TimeFor(-5,100) = %v, want 0", got)
	}
}

func TestTimeForBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TimeFor with zero rate did not panic")
		}
	}()
	TimeFor(1, 0)
}

func TestTransferTime(t *testing.T) {
	lat := 50 * time.Microsecond
	got := TransferTime(1<<20, float64(1<<20), lat) // 1 MiB over 1 MiB/s
	want := lat + time.Second
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
	if got := TransferTime(0, 1e9, lat); got != lat {
		t.Fatalf("TransferTime(0) = %v, want latency %v", got, lat)
	}
}

func TestPipelineMakespanEmpty(t *testing.T) {
	if got := PipelineMakespan(nil); got != 0 {
		t.Fatalf("empty makespan = %v, want 0", got)
	}
	if got := PipelineMakespan([]StageCosts{{}}); got != 0 {
		t.Fatalf("zero-stage makespan = %v, want 0", got)
	}
}

func TestPipelineMakespanSingleBlock(t *testing.T) {
	costs := []StageCosts{{time.Second, 2 * time.Second, time.Second}}
	if got := PipelineMakespan(costs); got != 4*time.Second {
		t.Fatalf("single block makespan = %v, want 4s", got)
	}
}

// With uniform stage costs the wavefront recurrence must agree with the
// textbook formula (stages + blocks - 1) * cost, which is also what the
// paper's Equation 1 reduces to when Tn = Tc = Tu.
func TestPipelineMakespanUniform(t *testing.T) {
	const blocks, stages = 7, 3
	unit := time.Second
	costs := make([]StageCosts, blocks)
	for i := range costs {
		costs[i] = StageCosts{unit, unit, unit}
	}
	want := time.Duration(blocks+stages-1) * unit
	if got := PipelineMakespan(costs); got != want {
		t.Fatalf("uniform makespan = %v, want %v", got, want)
	}
	_ = stages
}

// Matches Equation 1 of the paper for a dominant middle stage:
// Ttotal = Tn + (s-1)*Tc + Tu when Tc >= Tn, Tc >= Tu.
func TestPipelineMakespanDominantCompute(t *testing.T) {
	tn, tc, tu := 1*time.Second, 5*time.Second, 2*time.Second
	const s = 6
	costs := make([]StageCosts, s)
	for i := range costs {
		costs[i] = StageCosts{tn, tc, tu}
	}
	want := tn + s*tc + tu
	if got := PipelineMakespan(costs); got != want {
		t.Fatalf("dominant-compute makespan = %v, want %v", got, want)
	}
}

func TestSequentialMakespan(t *testing.T) {
	costs := []StageCosts{
		{time.Second, time.Second, time.Second},
		{2 * time.Second, 2 * time.Second, 2 * time.Second},
	}
	if got := SequentialMakespan(costs); got != 9*time.Second {
		t.Fatalf("sequential makespan = %v, want 9s", got)
	}
}

// Property: pipelining never loses to sequential execution, and never beats
// the busiest stage's total work (both classic pipeline bounds).
func TestPipelineMakespanBounds(t *testing.T) {
	f := func(raw [][3]uint16) bool {
		if len(raw) == 0 {
			return true
		}
		costs := make([]StageCosts, len(raw))
		stageSum := [3]time.Duration{}
		for i, r := range raw {
			costs[i] = StageCosts{
				time.Duration(r[0]) * time.Millisecond,
				time.Duration(r[1]) * time.Millisecond,
				time.Duration(r[2]) * time.Millisecond,
			}
			for s := 0; s < 3; s++ {
				stageSum[s] += costs[i][s]
			}
		}
		pipe := PipelineMakespan(costs)
		seq := SequentialMakespan(costs)
		if pipe > seq {
			return false
		}
		lower := stageSum[0]
		for _, v := range stageSum[1:] {
			if v > lower {
				lower = v
			}
		}
		return pipe >= lower
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: makespan is monotone — increasing any single stage cost can
// never decrease the total.
func TestPipelineMakespanMonotone(t *testing.T) {
	f := func(raw [][3]uint8, which uint8) bool {
		if len(raw) == 0 {
			return true
		}
		costs := make([]StageCosts, len(raw))
		for i, r := range raw {
			costs[i] = StageCosts{
				time.Duration(r[0]) * time.Millisecond,
				time.Duration(r[1]) * time.Millisecond,
				time.Duration(r[2]) * time.Millisecond,
			}
		}
		before := PipelineMakespan(costs)
		k := int(which) % len(costs)
		s := int(which) % 3
		costs[k][s] += 10 * time.Millisecond
		after := PipelineMakespan(costs)
		return after >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineMakespanRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged stage counts did not panic")
		}
	}()
	PipelineMakespan([]StageCosts{{1, 2, 3}, {1, 2}})
}

func TestSummarize(t *testing.T) {
	h := Summarize([]time.Duration{3 * time.Second, time.Second, 2 * time.Second})
	if h.Count != 3 || h.Min != time.Second || h.Max != 3*time.Second {
		t.Fatalf("bad histogram: %+v", h)
	}
	if h.Sum != 6*time.Second || h.Mean() != 2*time.Second {
		t.Fatalf("sum/mean wrong: %+v", h)
	}
	if h.P50 != 2*time.Second {
		t.Fatalf("P50 = %v, want 2s", h.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	h := Summarize(nil)
	if h.Count != 0 || h.Mean() != 0 {
		t.Fatalf("empty summary not zero: %+v", h)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []time.Duration{5, 1, 3}
	Summarize(in)
	if in[0] != 5 || in[1] != 1 || in[2] != 3 {
		t.Fatalf("Summarize mutated its input: %v", in)
	}
}

func TestSeconds(t *testing.T) {
	if got := Seconds(1500 * time.Millisecond); got != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", got)
	}
}
